// Robustness and edge-case coverage across modules: the synchronous-RPC
// network pump, lossy links, guard move semantics, TPM corner cases, and
// statistical behaviour of the full protocol under a realistic
// (typo-prone) human.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "core/trusted_path_pal.h"
#include "crypto/rsa.h"
#include "crypto/sha1.h"
#include "drtm/late_launch.h"
#include "net/channel.h"
#include "pal/human_agent.h"
#include "pal/session.h"
#include "sp/deployment.h"

namespace tp {
namespace {

// ------------------------------------------------------ Network pump

TEST(NetPump, ServiceAnswersSynchronously) {
  SimClock clock;
  net::Link link(net::NetParams{}, clock, SimRng(1));
  link.b().set_service([](BytesView request) {
    Bytes response = bytes_of("echo:");
    append(response, request);
    return response;
  });
  link.a().send(bytes_of("ping"));
  auto reply = link.a().receive();  // pumps the service transparently
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(string_of(reply.value()), "echo:ping");
}

TEST(NetPump, MultipleQueuedRequestsAllServed) {
  SimClock clock;
  net::Link link(net::NetParams{}, clock, SimRng(2));
  int served = 0;
  link.b().set_service([&served](BytesView) {
    ++served;
    return bytes_of("ok");
  });
  link.a().send(bytes_of("r1"));
  link.a().send(bytes_of("r2"));
  link.a().send(bytes_of("r3"));
  EXPECT_TRUE(link.a().receive().ok());
  EXPECT_TRUE(link.a().receive().ok());
  EXPECT_TRUE(link.a().receive().ok());
  EXPECT_EQ(served, 3);
  EXPECT_EQ(link.a().receive().code(), Err::kTimeout);
}

TEST(NetPump, NoServiceMeansTimeout) {
  SimClock clock;
  net::Link link(net::NetParams{}, clock, SimRng(3));
  link.a().send(bytes_of("ping"));
  EXPECT_EQ(link.a().receive().code(), Err::kTimeout);
}

TEST(NetPump, PumpChargesBothLegsOfLatency) {
  SimClock clock;
  net::NetParams params;
  params.latency_mean_ms = 30;
  params.latency_jitter_ms = 0.001;
  net::Link link(params, clock, SimRng(4));
  link.b().set_service([](BytesView) { return bytes_of("pong"); });
  link.a().send(bytes_of("ping"));
  ASSERT_TRUE(link.a().receive().ok());
  EXPECT_NEAR(clock.now().ns / 1e6, 60.0, 2.0);
}

// -------------------------------------------------------- Lossy links

TEST(LossyLink, ProtocolFailsGracefullyNotCatastrophically) {
  sp::DeploymentConfig cfg;
  cfg.client_id = "lossy";
  cfg.seed = bytes_of("lossy");
  cfg.tpm_key_bits = 768;
  cfg.client_key_bits = 768;
  cfg.net.loss_prob = 1.0;  // everything drops
  sp::Deployment world(cfg);
  auto status = world.client().enroll();
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), Err::kTimeout);
  EXPECT_FALSE(world.client().enrolled());
}

TEST(LossyLink, ModerateLossEventuallySucceedsOnRetry) {
  // The client does not retry internally; the caller does. Model a
  // caller-level retry loop against 40% loss.
  sp::DeploymentConfig cfg;
  cfg.client_id = "retry";
  cfg.seed = bytes_of("retry");
  cfg.tpm_key_bits = 768;
  cfg.client_key_bits = 768;
  cfg.net.loss_prob = 0.4;
  sp::Deployment world(cfg);
  devices::HumanParams hp;
  hp.typo_prob = 0.0;
  pal::HumanAgent agent(devices::HumanModel(hp, SimRng(7)), "pay 1");
  world.client().set_user_agent(&agent);

  bool enrolled = false;
  for (int attempt = 0; attempt < 30 && !enrolled; ++attempt) {
    enrolled = world.client().enroll().ok();
  }
  ASSERT_TRUE(enrolled);

  bool accepted = false;
  for (int attempt = 0; attempt < 30 && !accepted; ++attempt) {
    auto outcome = world.client().submit_transaction("pay 1", {});
    accepted = outcome.ok() && outcome.value().accepted;
  }
  EXPECT_TRUE(accepted);
}

// ------------------------------------------------ LaunchGuard semantics

TEST(LaunchGuard, MoveTransfersCleanupResponsibility) {
  drtm::PlatformConfig pc;
  pc.seed = bytes_of("guard");
  pc.tpm_key_bits = 768;
  drtm::Platform platform(pc);
  drtm::LateLaunch launcher(platform);
  {
    auto guard = launcher.launch(pal::PalDescriptor::make_image("g", 1), {});
    ASSERT_TRUE(guard.ok());
    drtm::LaunchGuard outer = guard.take();
    {
      drtm::LaunchGuard inner = std::move(outer);
      EXPECT_TRUE(platform.in_pal_session());
    }  // inner's destruction ends the session exactly once
    EXPECT_FALSE(platform.in_pal_session());
  }
  // A fresh launch works after the move dance.
  auto again = launcher.launch(pal::PalDescriptor::make_image("g", 1), {});
  EXPECT_TRUE(again.ok());
}

// ------------------------------------------------------- TPM edge cases

class TpmEdge : public ::testing::Test {
 protected:
  TpmEdge()
      : tpm_(tpm::default_chip(), bytes_of("edge"), clock_,
             tpm::TpmDevice::Options{.key_bits = 768}) {}
  SimClock clock_;
  tpm::TpmDevice tpm_;
};

TEST_F(TpmEdge, SealLargePayload) {
  SimRng rng(1);
  const Bytes payload = rng.next_bytes(64 * 1024);
  auto blob = tpm_.seal(tpm::Locality::kOs, tpm::PcrSelection::of({10}),
                        0xff, payload);
  ASSERT_TRUE(blob.ok());
  auto out = tpm_.unseal(tpm::Locality::kOs, blob.value());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value(), payload);
}

TEST_F(TpmEdge, ManyLoadedKeysCoexist) {
  std::vector<std::uint32_t> handles;
  for (int i = 0; i < 5; ++i) {
    auto wrapped = tpm_.create_wrap_key(tpm::PcrSelection::of({10}));
    ASSERT_TRUE(wrapped.ok());
    auto handle = tpm_.load_key2(wrapped.value());
    ASSERT_TRUE(handle.ok());
    handles.push_back(handle.value());
  }
  // All keys sign; all public keys are distinct.
  std::set<std::string> fingerprints;
  for (std::uint32_t h : handles) {
    EXPECT_TRUE(tpm_.sign(h, bytes_of("m")).ok());
    fingerprints.insert(
        to_hex(tpm_.key_public(h).value().fingerprint()));
  }
  EXPECT_EQ(fingerprints.size(), handles.size());
}

TEST_F(TpmEdge, QuoteWithEmptyExternalData) {
  auto quote = tpm_.quote({}, tpm::PcrSelection::of({0}));
  ASSERT_TRUE(quote.ok());
  EXPECT_TRUE(tpm::verify_quote(tpm_.aik_public(), quote.value(), {}).ok());
  EXPECT_FALSE(
      tpm::verify_quote(tpm_.aik_public(), quote.value(), Bytes(20, 1))
          .ok());
}

TEST_F(TpmEdge, QuoteEmptySelectionRejected) {
  EXPECT_FALSE(tpm_.quote(Bytes(20, 1), tpm::PcrSelection{}).ok());
}

TEST_F(TpmEdge, CountersAreMonotoneAcrossHeavyUse) {
  std::uint64_t last = 0;
  for (int i = 0; i < 200; ++i) {
    auto v = tpm_.counter_increment(1);
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(v.value(), last + 1);
    last = v.value();
  }
}

TEST_F(TpmEdge, Pcr19To22ExtendRequiresDynamicLocality) {
  const Bytes digest = crypto::Sha1::hash(bytes_of("x"));
  for (std::uint32_t pcr : {19u, 20u, 21u, 22u}) {
    EXPECT_EQ(tpm_.pcr_extend(tpm::Locality::kOs, pcr, digest).code(),
              Err::kIsolationViolation)
        << pcr;
    EXPECT_TRUE(tpm_.pcr_extend(tpm::Locality::kPal, pcr, digest).ok())
        << pcr;
  }
  // Static PCRs extend from anywhere.
  EXPECT_TRUE(tpm_.pcr_extend(tpm::Locality::kLegacy, 0, digest).ok());
}

TEST_F(TpmEdge, SealWithMultiPcrSelection) {
  const auto selection = tpm::PcrSelection::of({0, 5, 10, 17});
  // PCR17 is all-ones pre-launch; sealing to it is legal, releasing
  // works while it is unchanged.
  auto blob = tpm_.seal(tpm::Locality::kOs, selection, 0xff, bytes_of("s"));
  ASSERT_TRUE(blob.ok());
  EXPECT_TRUE(tpm_.unseal(tpm::Locality::kOs, blob.value()).ok());
}

// ------------------------------------------------ RSA parameter sweep

class RsaSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RsaSizes, SignVerifyEncryptDecrypt) {
  auto drbg = std::make_shared<crypto::HmacDrbg>(
      bytes_of("rsa-sizes" + std::to_string(GetParam())));
  auto rand = [drbg](std::size_t n) { return drbg->generate(n); };
  const auto key = crypto::rsa_generate(GetParam(), rand);
  EXPECT_EQ(key.n.bit_length(), GetParam());

  const Bytes msg = bytes_of("message");
  const Bytes sig = rsa_sign(key, crypto::HashAlg::kSha256, msg);
  EXPECT_TRUE(
      rsa_verify(key.public_key(), crypto::HashAlg::kSha256, msg, sig).ok());

  auto ct = rsa_encrypt(key.public_key(), bytes_of("k"), rand);
  ASSERT_TRUE(ct.ok());
  EXPECT_EQ(string_of(crypto::rsa_decrypt(key, ct.value()).value()), "k");
}

INSTANTIATE_TEST_SUITE_P(Sizes, RsaSizes, ::testing::Values(512, 768, 1024));

// --------------------------------- Realistic human, statistical checks

TEST(RealisticHuman, TyposRetryButConfirmEventually) {
  sp::DeploymentConfig cfg;
  cfg.client_id = "realistic";
  cfg.seed = bytes_of("realistic");
  cfg.tpm_key_bits = 768;
  cfg.client_key_bits = 768;
  sp::Deployment world(cfg);

  devices::HumanParams hp;  // default 2% typo rate, 95% attention
  pal::HumanAgent agent(devices::HumanModel(hp, SimRng(55)), "");
  world.client().set_user_agent(&agent);
  ASSERT_TRUE(world.client().enroll().ok());

  int accepted = 0;
  const int kTx = 40;
  for (int i = 0; i < kTx; ++i) {
    const std::string summary = "pay " + std::to_string(i);
    agent.set_intended_summary(summary);
    auto outcome = world.client().submit_transaction(summary, {});
    ASSERT_TRUE(outcome.ok());
    if (outcome.value().accepted) ++accepted;
  }
  // With 3 attempts and a 2%-per-char typo rate, the failure probability
  // per transaction is ~(1-0.886)^3 < 0.2%; all 40 should pass, allow 1.
  EXPECT_GE(accepted, kTx - 1);
}

TEST(RealisticHuman, SessionTimesVaryButStayHumanScale) {
  sp::DeploymentConfig cfg;
  cfg.client_id = "timing";
  cfg.seed = bytes_of("timing");
  cfg.tpm_key_bits = 768;
  cfg.client_key_bits = 768;
  sp::Deployment world(cfg);
  devices::HumanParams hp;
  hp.typo_prob = 0.0;
  pal::HumanAgent agent(devices::HumanModel(hp, SimRng(66)), "");
  world.client().set_user_agent(&agent);
  ASSERT_TRUE(world.client().enroll().ok());

  double min_user = 1e18, max_user = 0;
  for (int i = 0; i < 10; ++i) {
    const std::string summary = "pay " + std::to_string(i);
    agent.set_intended_summary(summary);
    auto outcome = world.client().submit_transaction(summary, {});
    ASSERT_TRUE(outcome.ok());
    const double user_s = outcome.value().timing.user.to_seconds();
    min_user = std::min(min_user, user_s);
    max_user = std::max(max_user, user_s);
  }
  EXPECT_GT(min_user, 0.5);   // nobody confirms in under half a second
  EXPECT_LT(max_user, 15.0);  // and nobody takes a quarter hour
  EXPECT_NE(min_user, max_user);  // the human model actually varies
}

// -------------------------------------------- Deployment determinism

TEST(Determinism, SameSeedSameOutcomeBytes) {
  auto run = [](const char* seed) {
    sp::DeploymentConfig cfg;
    cfg.client_id = "det";
    cfg.seed = bytes_of(seed);
    cfg.tpm_key_bits = 768;
    cfg.client_key_bits = 768;
    sp::Deployment world(cfg);
    devices::HumanParams hp;
    hp.typo_prob = 0.0;
    pal::HumanAgent agent(devices::HumanModel(hp, SimRng(1)), "pay 1");
    world.client().set_user_agent(&agent);
    EXPECT_TRUE(world.client().enroll().ok());
    return std::make_pair(world.client().confirmation_pubkey(),
                          world.clock().now().ns);
  };
  const auto a = run("seed-A");
  const auto b = run("seed-A");
  const auto c = run("seed-B");
  EXPECT_EQ(a.first, b.first);   // same key material
  EXPECT_EQ(a.second, b.second); // same virtual timeline, to the ns
  EXPECT_NE(a.first, c.first);
}

}  // namespace
}  // namespace tp
