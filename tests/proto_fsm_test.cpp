// Exhaustive tests of the protocol-session state machine.
//
// proto::step is a pure function over a finite domain (2 phases x 5
// states x 5 events = 50 triples), so the whole transition matrix is
// checked against an independently written literal table -- a
// double-entry bookkeeping of the protocol's lifecycle. If a future
// change disturbs any edge, the exact (phase, state, event) triple is
// named in the failure.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "proto/session_fsm.h"

namespace tp::proto {
namespace {

using S = SessionState;
using E = SessionEvent;
using A = SessionAction;
using R = RejectCode;

struct Row {
  SessionPhase phase;
  S state;
  E event;
  S next;
  A action;
  R reject;
};

// The expected matrix, written out literally (NOT derived from step()).
// no-session rejects differ by phase: kNoPendingEnrollment for enroll,
// kUnknownTx for confirm; everything else is phase-independent.
constexpr SessionPhase EN = SessionPhase::kEnroll;
constexpr SessionPhase CO = SessionPhase::kConfirm;

const Row kExpected[] = {
    // --- kBegin: always (re)opens the session ---------------------------
    {EN, S::kIdle, E::kBegin, S::kChallengeSent, A::kSendChallenge, R::kNone},
    {EN, S::kChallengeSent, E::kBegin, S::kChallengeSent, A::kSendChallenge,
     R::kNone},
    {EN, S::kDone, E::kBegin, S::kChallengeSent, A::kSendChallenge, R::kNone},
    {EN, S::kFailed, E::kBegin, S::kChallengeSent, A::kSendChallenge,
     R::kNone},
    {EN, S::kExpired, E::kBegin, S::kChallengeSent, A::kSendChallenge,
     R::kNone},
    {CO, S::kIdle, E::kBegin, S::kChallengeSent, A::kSendChallenge, R::kNone},
    {CO, S::kChallengeSent, E::kBegin, S::kChallengeSent, A::kSendChallenge,
     R::kNone},
    {CO, S::kDone, E::kBegin, S::kChallengeSent, A::kSendChallenge, R::kNone},
    {CO, S::kFailed, E::kBegin, S::kChallengeSent, A::kSendChallenge,
     R::kNone},
    {CO, S::kExpired, E::kBegin, S::kChallengeSent, A::kSendChallenge,
     R::kNone},

    // --- kComplete: only a live challenge may be completed --------------
    {EN, S::kIdle, E::kComplete, S::kIdle, A::kReject,
     R::kNoPendingEnrollment},
    {EN, S::kChallengeSent, E::kComplete, S::kChallengeSent, A::kVerify,
     R::kNone},
    {EN, S::kDone, E::kComplete, S::kDone, A::kReject,
     R::kNoPendingEnrollment},
    {EN, S::kFailed, E::kComplete, S::kFailed, A::kReject,
     R::kNoPendingEnrollment},
    {EN, S::kExpired, E::kComplete, S::kExpired, A::kReject,
     R::kSessionExpired},
    {CO, S::kIdle, E::kComplete, S::kIdle, A::kReject, R::kUnknownTx},
    {CO, S::kChallengeSent, E::kComplete, S::kChallengeSent, A::kVerify,
     R::kNone},
    {CO, S::kDone, E::kComplete, S::kDone, A::kReject, R::kUnknownTx},
    {CO, S::kFailed, E::kComplete, S::kFailed, A::kReject, R::kUnknownTx},
    {CO, S::kExpired, E::kComplete, S::kExpired, A::kReject,
     R::kSessionExpired},

    // --- kVerifyOk: settles a live challenge as accepted -----------------
    {EN, S::kIdle, E::kVerifyOk, S::kIdle, A::kReject,
     R::kNoPendingEnrollment},
    {EN, S::kChallengeSent, E::kVerifyOk, S::kDone, A::kAccept, R::kNone},
    {EN, S::kDone, E::kVerifyOk, S::kDone, A::kReject,
     R::kNoPendingEnrollment},
    {EN, S::kFailed, E::kVerifyOk, S::kFailed, A::kReject,
     R::kNoPendingEnrollment},
    {EN, S::kExpired, E::kVerifyOk, S::kExpired, A::kReject,
     R::kSessionExpired},
    {CO, S::kIdle, E::kVerifyOk, S::kIdle, A::kReject, R::kUnknownTx},
    {CO, S::kChallengeSent, E::kVerifyOk, S::kDone, A::kAccept, R::kNone},
    {CO, S::kDone, E::kVerifyOk, S::kDone, A::kReject, R::kUnknownTx},
    {CO, S::kFailed, E::kVerifyOk, S::kFailed, A::kReject, R::kUnknownTx},
    {CO, S::kExpired, E::kVerifyOk, S::kExpired, A::kReject,
     R::kSessionExpired},

    // --- kVerifyFail: settles a live challenge as rejected; the reject
    // code is kNone on the live edge (the verifier supplies it) ----------
    {EN, S::kIdle, E::kVerifyFail, S::kIdle, A::kReject,
     R::kNoPendingEnrollment},
    {EN, S::kChallengeSent, E::kVerifyFail, S::kFailed, A::kReject,
     R::kNone},
    {EN, S::kDone, E::kVerifyFail, S::kDone, A::kReject,
     R::kNoPendingEnrollment},
    {EN, S::kFailed, E::kVerifyFail, S::kFailed, A::kReject,
     R::kNoPendingEnrollment},
    {EN, S::kExpired, E::kVerifyFail, S::kExpired, A::kReject,
     R::kSessionExpired},
    {CO, S::kIdle, E::kVerifyFail, S::kIdle, A::kReject, R::kUnknownTx},
    {CO, S::kChallengeSent, E::kVerifyFail, S::kFailed, A::kReject,
     R::kNone},
    {CO, S::kDone, E::kVerifyFail, S::kDone, A::kReject, R::kUnknownTx},
    {CO, S::kFailed, E::kVerifyFail, S::kFailed, A::kReject, R::kUnknownTx},
    {CO, S::kExpired, E::kVerifyFail, S::kExpired, A::kReject,
     R::kSessionExpired},

    // --- kDeadline: expires a live challenge, no-op elsewhere ------------
    {EN, S::kIdle, E::kDeadline, S::kIdle, A::kNone, R::kNone},
    {EN, S::kChallengeSent, E::kDeadline, S::kExpired, A::kReject,
     R::kSessionExpired},
    {EN, S::kDone, E::kDeadline, S::kDone, A::kNone, R::kNone},
    {EN, S::kFailed, E::kDeadline, S::kFailed, A::kNone, R::kNone},
    {EN, S::kExpired, E::kDeadline, S::kExpired, A::kNone, R::kNone},
    {CO, S::kIdle, E::kDeadline, S::kIdle, A::kNone, R::kNone},
    {CO, S::kChallengeSent, E::kDeadline, S::kExpired, A::kReject,
     R::kSessionExpired},
    {CO, S::kDone, E::kDeadline, S::kDone, A::kNone, R::kNone},
    {CO, S::kFailed, E::kDeadline, S::kFailed, A::kNone, R::kNone},
    {CO, S::kExpired, E::kDeadline, S::kExpired, A::kNone, R::kNone},
};

TEST(SessionFsm, MatrixIsExhaustive) {
  // Every (phase, state, event) triple appears exactly once in the
  // expected table -- the table covers the whole domain.
  std::set<std::tuple<int, int, int>> seen;
  for (const Row& row : kExpected) {
    seen.insert({static_cast<int>(row.phase), static_cast<int>(row.state),
                 static_cast<int>(row.event)});
  }
  EXPECT_EQ(seen.size(),
            kSessionPhaseCount * kSessionStateCount * kSessionEventCount);
  EXPECT_EQ(std::size(kExpected),
            kSessionPhaseCount * kSessionStateCount * kSessionEventCount);
}

TEST(SessionFsm, EveryTransitionMatchesTheLiteralTable) {
  for (const Row& row : kExpected) {
    const Step got = step(row.phase, row.state, row.event);
    const std::string where =
        std::string(row.phase == EN ? "enroll" : "confirm") + "/" +
        session_state_name(row.state) + "+" + session_event_name(row.event);
    EXPECT_EQ(got.next, row.next) << where;
    EXPECT_EQ(got.action, row.action) << where;
    EXPECT_EQ(got.reject, row.reject) << where;
  }
}

TEST(SessionFsm, TerminalStatesAreExactlyDoneFailedExpired) {
  EXPECT_FALSE(session_state_terminal(S::kIdle));
  EXPECT_FALSE(session_state_terminal(S::kChallengeSent));
  EXPECT_TRUE(session_state_terminal(S::kDone));
  EXPECT_TRUE(session_state_terminal(S::kFailed));
  EXPECT_TRUE(session_state_terminal(S::kExpired));
}

TEST(SessionFsm, RejectEdgesFromTerminalStatesStayPut) {
  // A terminal state never transitions except through kBegin: the FSM
  // cannot resurrect a settled session by accident.
  for (const SessionPhase phase : {EN, CO}) {
    for (const S state : {S::kDone, S::kFailed, S::kExpired}) {
      for (const E event :
           {E::kComplete, E::kVerifyOk, E::kVerifyFail, E::kDeadline}) {
        EXPECT_EQ(step(phase, state, event).next, state)
            << session_state_name(state) << "+" << session_event_name(event);
      }
    }
  }
}

TEST(SessionFsm, SessionHandleDrivesTheHappyPath) {
  Session session(SessionPhase::kConfirm);
  EXPECT_EQ(session.state(), S::kIdle);

  Step s = session.apply(E::kBegin);
  EXPECT_EQ(s.action, A::kSendChallenge);
  EXPECT_EQ(session.state(), S::kChallengeSent);

  s = session.apply(E::kComplete);
  EXPECT_EQ(s.action, A::kVerify);
  EXPECT_EQ(session.state(), S::kChallengeSent);

  s = session.apply(E::kVerifyOk);
  EXPECT_EQ(s.action, A::kAccept);
  EXPECT_EQ(session.state(), S::kDone);
  EXPECT_TRUE(session_state_terminal(session.state()));

  // And kBegin recycles the handle for the next exchange.
  s = session.apply(E::kBegin);
  EXPECT_EQ(s.action, A::kSendChallenge);
  EXPECT_EQ(session.state(), S::kChallengeSent);
}

TEST(SessionFsm, StepIsConstexpr) {
  static_assert(step(EN, S::kIdle, E::kBegin).action == A::kSendChallenge);
  static_assert(step(CO, S::kIdle, E::kComplete).reject == R::kUnknownTx);
  static_assert(step(EN, S::kIdle, E::kComplete).reject ==
                R::kNoPendingEnrollment);
  static_assert(step(CO, S::kChallengeSent, E::kDeadline).next ==
                S::kExpired);
  SUCCEED();
}

TEST(RejectCodes, NamesAndMessagesAreUniqueAndDefined) {
  std::set<std::string> names;
  std::set<std::string> messages;
  for (std::size_t i = 0; i < kRejectCodeCount; ++i) {
    const auto code = static_cast<RejectCode>(i);
    EXPECT_TRUE(reject_code_valid(static_cast<std::uint8_t>(i)));
    const std::string name = reject_code_name(code);
    EXPECT_NE(name, "unknown") << i;
    EXPECT_TRUE(names.insert(name).second) << "duplicate name: " << name;
    // Messages are unique too (kNone's empty string included once).
    EXPECT_TRUE(messages.insert(reject_code_message(code)).second)
        << "duplicate message for " << name;
  }
  EXPECT_FALSE(reject_code_valid(static_cast<std::uint8_t>(kRejectCodeCount)));
  EXPECT_FALSE(reject_code_valid(0xff));
}

}  // namespace
}  // namespace tp::proto
