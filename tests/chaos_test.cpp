// Chaos suite (`ctest -L chaos`): deterministic fault injection across
// the client <-> SP protocol, asserting the exactly-once contract.
//
// Invariants under fault rates up to ~30% per direction:
//   - every submission resolves: exactly-once accept or a typed reject;
//   - the client's accept count equals the SP's (no double-execution,
//     no phantom accepts);
//   - session-table memory stays flat (terminal holds are bounded);
//   - the same seed replays the identical fault trace and outcomes.
//
// The probabilistic suites honour TP_CHAOS_SEED (CI randomizes it; the
// seed is always printed so a failure is replayable). The full-stack
// suites pin their seeds: their stronger assertion ("every transaction
// accepted") depends on the sampled fault sequence, not just on the
// invariants.
#include <gtest/gtest.h>

#include <cstdlib>
#include <iostream>
#include <string>

#include "core/messages.h"
#include "core/trusted_path_pal.h"
#include "pal/human_agent.h"
#include "sp/deployment.h"
#include "sp/service_provider.h"
#include "tpm/tpm2_device.h"
#include "tpm/tpm_device.h"

namespace tp {
namespace {

using core::MsgType;
using core::TxChallenge;
using core::TxConfirm;
using core::TxResult;
using core::TxSubmit;
using core::Verdict;

std::uint64_t chaos_seed() {
  static const std::uint64_t seed = [] {
    const char* env = std::getenv("TP_CHAOS_SEED");
    const std::uint64_t s =
        env != nullptr ? std::strtoull(env, nullptr, 10) : 0xc7a05ull;
    std::cout << "[chaos] seed = " << s << " (set TP_CHAOS_SEED=" << s
              << " to reproduce)" << std::endl;
    return s;
  }();
  return seed;
}

// ------------------------------------------------------------ frame level

sp::SpConfig baseline_sp_config(const SimClock* clock) {
  sp::SpConfig cfg;
  cfg.require_trusted_path = false;  // raw-frame tests skip enrollment
  cfg.clock = clock;
  return cfg;
}

Bytes submit_frame(const std::string& client, const std::string& summary) {
  TxSubmit submit;
  submit.client_id = client;
  submit.summary = summary;
  submit.payload = bytes_of("payload:" + summary);
  return core::envelope(MsgType::kTxSubmit, submit.serialize());
}

Bytes confirm_frame(const std::string& client, std::uint64_t tx_id,
                    Verdict verdict) {
  TxConfirm confirm;
  confirm.client_id = client;
  confirm.tx_id = tx_id;
  confirm.verdict = verdict;
  return core::envelope(MsgType::kTxConfirm, confirm.serialize());
}

TEST(ChaosIdempotency, RetransmittedFramesReplayByteIdentically) {
  sp::ServiceProvider sp(baseline_sp_config(nullptr));

  // A retransmitted TxSubmit replays the exact challenge bytes and does
  // not open a second session.
  const Bytes submit = submit_frame("alice", "pay 5");
  const Bytes challenge1 = sp.handle_frame(submit);
  const Bytes challenge2 = sp.handle_frame(submit);
  EXPECT_EQ(challenge1, challenge2);
  EXPECT_EQ(sp.replayed_challenges(), 1u);
  EXPECT_EQ(sp.session_table_occupancy(), 1u);

  auto opened = core::open_envelope(challenge1);
  ASSERT_TRUE(opened.ok());
  auto challenge = TxChallenge::deserialize(opened.value().second);
  ASSERT_TRUE(challenge.ok());

  // A retransmitted TxConfirm replays the settled result; the accept is
  // counted exactly once.
  const Bytes confirm =
      confirm_frame("alice", challenge.value().tx_id, Verdict::kConfirmed);
  const Bytes result1 = sp.handle_frame(confirm);
  const Bytes result2 = sp.handle_frame(confirm);
  EXPECT_EQ(result1, result2);
  EXPECT_EQ(sp.replayed_results(), 1u);
  EXPECT_EQ(sp.stats().tx_accepted, 1u);

  auto result = TxResult::deserialize(core::open_envelope(result1)
                                          .value()
                                          .second);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().accepted);
}

TEST(ChaosIdempotency, DifferingRetransmissionGetsTypedReject) {
  sp::ServiceProvider sp(baseline_sp_config(nullptr));

  const Bytes challenge_frame = sp.handle_frame(submit_frame("bob", "pay 9"));
  auto challenge = TxChallenge::deserialize(
      core::open_envelope(challenge_frame).value().second);
  ASSERT_TRUE(challenge.ok());
  const std::uint64_t tx_id = challenge.value().tx_id;

  const Bytes result1 =
      sp.handle_frame(confirm_frame("bob", tx_id, Verdict::kConfirmed));
  ASSERT_TRUE(TxResult::deserialize(core::open_envelope(result1).value().second)
                  .value()
                  .accepted);

  // Same tx id, different bytes: not a retransmission -- the settled
  // outcome must not be re-litigated, and the reject is typed.
  const Bytes result2 =
      sp.handle_frame(confirm_frame("bob", tx_id, Verdict::kRejected));
  auto reject =
      TxResult::deserialize(core::open_envelope(result2).value().second);
  ASSERT_TRUE(reject.ok());
  EXPECT_FALSE(reject.value().accepted);
  EXPECT_EQ(reject.value().code, proto::RejectCode::kRetryMismatch);
  EXPECT_EQ(sp.stats().tx_accepted, 1u);
  EXPECT_EQ(sp.stats().rejects(proto::RejectCode::kRetryMismatch), 1u);
}

// --------------------------------------------------------- protocol level

struct ChaosOutcome {
  std::uint64_t client_accepts = 0;
  std::uint64_t client_rejects = 0;
  std::uint64_t client_mismatch_rejects = 0;  // typed kRetryMismatch
  std::uint64_t client_untyped_rejects = 0;   // rejects with code == kNone
  std::uint64_t unresolved = 0;
  std::uint64_t sp_accepts = 0;
  std::uint64_t sp_rejects = 0;
  std::uint64_t replayed = 0;
  std::uint64_t injected = 0;
  std::uint64_t trace = 0;

  bool operator==(const ChaosOutcome&) const = default;
};

// Drives `num_txs` transactions through raw frames over a heavily faulty
// link, with a deadline-bounded retransmit loop standing in for the
// client. Each transaction uses its own client id so a stale frame from
// an earlier transaction can never be silently accepted for a later one:
// a TxChallenge carries no client binding, so a delay-spiked duplicate
// of an earlier submit can re-open that client's session and feed its
// challenge to the wrong transaction -- the confirm then draws a typed
// kClientMismatch, which the driver treats as "stale challenge, fetch
// mine again" (the submit retransmission is idempotent, so re-fetching
// replays the right challenge).
//
// `corrupt` adds byte-flip faults on the uplink. Corruption on this
// unauthenticated transport is special: a flipped byte in a
// retransmission makes it no longer byte-identical to the settled
// original, so the SP answers kRetryMismatch instead of replaying -- the
// typed-reject arm of the contract, exercised by its own test below.
// The downlink is never corrupted here: results carry no integrity
// check, so a flipped accept bit would silently alter what the client
// records -- defending that is the secure transport's job (covered by
// the full-stack suite).
ChaosOutcome run_protocol_chaos(std::uint64_t seed, int num_txs,
                                bool corrupt) {
  SimClock clock;
  net::NetParams params;
  params.latency_mean_ms = 5.0;
  params.latency_jitter_ms = 1.0;
  params.fault.seed = seed;
  // ~26% aggregate fault rate toward the SP (30% with corruption on)
  // and ~26% back.
  params.fault.to_sp.drop_prob = 0.12;
  params.fault.to_sp.dup_prob = 0.08;
  params.fault.to_sp.reorder_prob = 0.04;
  params.fault.to_sp.corrupt_prob = corrupt ? 0.04 : 0.0;
  params.fault.to_sp.delay_spike_prob = 0.02;
  params.fault.to_sp.delay_spike_ms = 40.0;
  params.fault.to_client.drop_prob = 0.12;
  params.fault.to_client.dup_prob = 0.08;
  params.fault.to_client.reorder_prob = 0.04;
  params.fault.to_client.delay_spike_prob = 0.02;
  params.fault.to_client.delay_spike_ms = 40.0;

  sp::ServiceProvider sp(baseline_sp_config(&clock));
  net::Link link(params, clock, SimRng(seed ^ 0x6c696e6bull));
  link.b().set_service([&sp](BytesView f) { return sp.handle_frame(f); });

  const std::size_t session_mem = sp.session_table_memory_bytes();
  const std::size_t dedup_mem = sp.submit_dedup_memory_bytes();

  // Retransmit until a response of the wanted shape arrives; anything
  // else in the queue (duplicates, stale challenges, rejects for
  // corrupted copies) is drained and discarded.
  const auto exchange = [&](const Bytes& frame, MsgType want,
                            std::uint64_t want_tx_id) -> Result<Bytes> {
    for (int attempt = 0; attempt < 60; ++attempt) {
      link.a().send(frame);
      for (;;) {
        auto got = link.a().receive();
        if (!got.ok()) break;  // dropped or pending: back off, retransmit
        auto opened = core::open_envelope(got.value());
        if (!opened.ok()) continue;
        if (opened.value().first != want) continue;
        if (want == MsgType::kTxResult) {
          auto result = TxResult::deserialize(opened.value().second);
          if (!result.ok() || result.value().tx_id != want_tx_id) continue;
        }
        return Bytes(opened.value().second);
      }
      clock.charge("chaos:retry-backoff", SimDuration::millis(20));
    }
    return Error{Err::kTimeout, "chaos: retry budget exhausted"};
  };

  ChaosOutcome out;
  for (int i = 0; i < num_txs; ++i) {
    const std::string client = "chaos-" + std::to_string(i);
    const Bytes submit = submit_frame(client, "tx " + std::to_string(i));
    bool resolved = false;
    for (int round = 0; round < 5 && !resolved; ++round) {
      auto challenge_payload = exchange(submit, MsgType::kTxChallenge, 0);
      if (!challenge_payload.ok()) break;
      auto challenge = TxChallenge::deserialize(challenge_payload.value());
      if (!challenge.ok()) break;
      auto result_payload =
          exchange(confirm_frame(client, challenge.value().tx_id,
                                 Verdict::kConfirmed),
                   MsgType::kTxResult, challenge.value().tx_id);
      if (!result_payload.ok()) break;
      const auto result = TxResult::deserialize(result_payload.value());
      if (!result.value().accepted &&
          (result.value().code == proto::RejectCode::kClientMismatch ||
           result.value().code == proto::RejectCode::kUnknownTx)) {
        // The challenge we consumed was not ours (stale duplicate from an
        // earlier transaction). The mismatch is a typed reject of THAT
        // session, not a verdict on this submission: re-fetch our own
        // challenge and settle for real.
        continue;
      }
      resolved = true;
      if (result.value().accepted) {
        ++out.client_accepts;
      } else {
        ++out.client_rejects;
        if (result.value().code == proto::RejectCode::kRetryMismatch) {
          ++out.client_mismatch_rejects;
        }
        if (result.value().code == proto::RejectCode::kNone) {
          ++out.client_untyped_rejects;
        }
      }
    }
    if (!resolved) ++out.unresolved;
  }

  // The boundedness half of the contract: a retry storm must not grow
  // the SP's session state.
  EXPECT_EQ(sp.session_table_memory_bytes(), session_mem);
  EXPECT_EQ(sp.submit_dedup_memory_bytes(), dedup_mem);
  EXPECT_LE(sp.session_table_occupancy(),
            sp::SpConfig{}.tx_session_capacity + 1);

  out.sp_accepts = sp.stats().tx_accepted;
  out.sp_rejects = sp.stats().tx_rejected;
  out.replayed = sp.replayed_challenges() + sp.replayed_results();
  out.injected = link.faults()->injected_total();
  out.trace = link.faults()->trace_fingerprint();
  return out;
}

TEST(ChaosProtocol, TenThousandTransactionsExactlyOnceUnderHeavyFaults) {
  const ChaosOutcome out =
      run_protocol_chaos(chaos_seed(), 10000, /*corrupt=*/false);

  // Every submission resolved, and nothing executed twice or invented:
  // accepts observed by the client == accepts executed by the SP. With
  // faults limited to drop/dup/reorder/delay (bytes never change in
  // transit), exactly-once is exact: all 10k transactions land.
  EXPECT_EQ(out.unresolved, 0u);
  EXPECT_EQ(out.client_accepts, out.sp_accepts);
  EXPECT_EQ(out.client_accepts, 10000u);
  EXPECT_EQ(out.client_rejects, 0u);

  // The run actually exercised the machinery.
  EXPECT_GT(out.injected, 1000u);
  EXPECT_GT(out.replayed, 100u);
}

TEST(ChaosProtocol, CorruptionYieldsTypedRejectsNeverDoubleExecution) {
  const ChaosOutcome out =
      run_protocol_chaos(chaos_seed() ^ 0x636f72ull, 10000, /*corrupt=*/true);

  // A flipped byte can cost a transaction (the SP may settle the mangled
  // bytes, or refuse a no-longer-identical retransmission with
  // kRetryMismatch), but every submission still resolves to an accept or
  // a TYPED reject, and nothing ever executes twice: SP accepts are
  // bounded by the number of submissions, and the only accepts the
  // client misses are those whose retransmission was mangled after the
  // SP had settled (each such miss shows up as a kRetryMismatch).
  EXPECT_EQ(out.unresolved, 0u);
  EXPECT_EQ(out.client_accepts + out.client_rejects, 10000u);
  EXPECT_EQ(out.client_untyped_rejects, 0u);
  EXPECT_LE(out.sp_accepts, 10000u);
  EXPECT_LE(out.client_accepts, out.sp_accepts);
  EXPECT_LE(out.sp_accepts - out.client_accepts, out.client_mismatch_rejects);
  // Heavy corruption, but the vast majority still lands first-class.
  EXPECT_GT(out.client_accepts, 9000u);
}

TEST(ChaosProtocol, SameSeedReplaysIdenticalTraceAndOutcomes) {
  const std::uint64_t seed = chaos_seed() ^ 0x7265706cull;
  const ChaosOutcome first = run_protocol_chaos(seed, 2000, true);
  const ChaosOutcome second = run_protocol_chaos(seed, 2000, true);
  EXPECT_EQ(first, second);
  EXPECT_GT(first.injected, 0u);

  // A different seed draws a different fault sequence.
  const ChaosOutcome other = run_protocol_chaos(seed + 1, 2000, true);
  EXPECT_NE(other.trace, first.trace);
}

// ------------------------------------------------------------- full stack

devices::HumanParams perfect_human() {
  devices::HumanParams p;
  p.typo_prob = 0.0;
  p.attention = 1.0;
  return p;
}

TEST(ChaosFullStack, RetryingClientConfirmsEverythingOverFaultyLink) {
  obs::Registry registry;
  sp::DeploymentConfig cfg;
  cfg.client_id = "chaos-alice";
  cfg.seed = bytes_of("chaos-full-stack");
  cfg.tpm_key_bits = 768;
  cfg.client_key_bits = 768;
  cfg.metrics = &registry;
  cfg.net.metrics = &registry;
  // Pinned seed: the all-accepted assertion depends on the sampled fault
  // sequence (see file header).
  cfg.net.fault.seed = 0x66756c6cull;
  cfg.net.fault.to_sp.drop_prob = 0.12;
  cfg.net.fault.to_sp.dup_prob = 0.06;
  cfg.net.fault.to_sp.reorder_prob = 0.04;
  cfg.net.fault.to_client.drop_prob = 0.12;
  cfg.net.fault.to_client.dup_prob = 0.06;
  cfg.net.fault.to_client.reorder_prob = 0.04;
  // One full partition mid-run; the backoff schedule must out-wait it.
  cfg.net.fault.partitions.push_back(net::PartitionWindow{
      SimTime{SimDuration::seconds(5).ns},
      SimTime{SimDuration::seconds(5.6).ns}});
  cfg.client_retry.max_attempts = 12;
  cfg.client_retry.backoff_base = SimDuration::millis(50);
  // The client machine's TPM glitches too; the driver-level retry budget
  // absorbs it.
  cfg.tpm_faults.transient_prob = 0.05;
  cfg.tpm_faults.max_retries = 10;

  sp::Deployment world(cfg);
  pal::HumanAgent agent(devices::HumanModel(perfect_human(), SimRng(11)), "");
  world.client().set_user_agent(&agent);

  ASSERT_TRUE(world.client().enroll().ok());
  const int kTxs = 20;
  for (int i = 0; i < kTxs; ++i) {
    const std::string summary = "pay " + std::to_string(i) + " EUR";
    agent.set_intended_summary(summary);
    auto outcome =
        world.client().submit_transaction(summary, bytes_of("payload"));
    ASSERT_TRUE(outcome.ok()) << "tx " << i << ": "
                              << outcome.error().message;
    EXPECT_TRUE(outcome.value().accepted) << "tx " << i;
  }
  EXPECT_EQ(world.sp().stats().tx_accepted, static_cast<std::uint64_t>(kTxs));
  EXPECT_GT(world.client().retries(), 0u);
  EXPECT_EQ(world.client().exchange_give_ups(), 0u);
  EXPECT_GT(world.link().faults()->injected_total(), 0u);
  EXPECT_GT(world.platform().tpm().transient_faults(), 0u);
  EXPECT_EQ(world.platform().tpm().fault_exhaustions(), 0u);

  // The acceptance criterion "retry metrics visible in the obs registry":
  // client retries, injected faults and SP replay counters all surface in
  // the shared registry's JSON export.
  const std::string json = registry.to_json();
  EXPECT_NE(json.find("client.retries"), std::string::npos);
  EXPECT_NE(json.find("faults.injected.drop"), std::string::npos);
  EXPECT_NE(json.find("sp.retry.replayed_challenge"), std::string::npos);
}

TEST(ChaosFullStack, SecureTransportSurvivesCorruptionBothDirections) {
  sp::DeploymentConfig cfg;
  cfg.client_id = "chaos-tls";
  cfg.seed = bytes_of("chaos-secure");
  cfg.tpm_key_bits = 768;
  cfg.client_key_bits = 768;
  cfg.secure_transport = true;
  // With authenticated records, corruption is safe in BOTH directions: a
  // flipped byte fails the MAC, the record is discarded, and the
  // retransmission (a fresh sequence number; the receive window is
  // forward-jump tolerant) replays the SP's cached response.
  cfg.net.fault.seed = 0x746c73ull;  // pinned (see file header)
  cfg.net.fault.to_sp.drop_prob = 0.08;
  cfg.net.fault.to_sp.dup_prob = 0.05;
  cfg.net.fault.to_sp.corrupt_prob = 0.08;
  cfg.net.fault.to_client.drop_prob = 0.08;
  cfg.net.fault.to_client.dup_prob = 0.05;
  cfg.net.fault.to_client.corrupt_prob = 0.08;
  cfg.client_retry.max_attempts = 12;
  cfg.client_retry.backoff_base = SimDuration::millis(50);

  sp::Deployment world(cfg);
  pal::HumanAgent agent(devices::HumanModel(perfect_human(), SimRng(12)), "");
  world.client().set_user_agent(&agent);

  ASSERT_TRUE(world.client().enroll().ok());
  const int kTxs = 12;
  for (int i = 0; i < kTxs; ++i) {
    const std::string summary = "wire " + std::to_string(i);
    agent.set_intended_summary(summary);
    auto outcome =
        world.client().submit_transaction(summary, bytes_of("body"));
    ASSERT_TRUE(outcome.ok()) << "tx " << i << ": "
                              << outcome.error().message;
    EXPECT_TRUE(outcome.value().accepted) << "tx " << i;
  }
  EXPECT_EQ(world.sp().stats().tx_accepted, static_cast<std::uint64_t>(kTxs));
  EXPECT_GT(world.client().retries(), 0u);
  EXPECT_GT(world.link().faults()->injected(net::FaultKind::kCorrupt), 0u);
}

// -------------------------------------------------------------------- TPM

TEST(ChaosTpm, TransientFaultsRecoverWithinRetryBudget) {
  SimClock clock;
  tpm::TpmDevice::Options options;
  options.faults.transient_prob = 0.25;
  options.faults.max_retries = 10;  // exhaustion odds ~0.25^11 per command
  options.faults.seed = chaos_seed();
  tpm::TpmDevice tpm(tpm::default_chip(), bytes_of("chaos-tpm"), clock,
                     options);

  SimClock baseline_clock;
  tpm::TpmDevice baseline(tpm::default_chip(), bytes_of("chaos-tpm"),
                          baseline_clock, tpm::TpmDevice::Options{});

  const auto selection = tpm::PcrSelection::of({16});
  for (int i = 0; i < 100; ++i) {
    auto blob = tpm.seal(tpm::Locality::kOs, selection, 0xff,
                         bytes_of("secret"));
    ASSERT_TRUE(blob.ok()) << "seal " << i << ": " << blob.error().message;
    auto out = tpm.unseal(tpm::Locality::kOs, blob.value());
    ASSERT_TRUE(out.ok()) << "unseal " << i << ": " << out.error().message;
    ASSERT_TRUE(
        baseline.seal(tpm::Locality::kOs, selection, 0xff,
                      bytes_of("secret"))
            .ok());
  }
  EXPECT_GT(tpm.transient_faults(), 0u);
  EXPECT_EQ(tpm.fault_retries(), tpm.transient_faults());
  EXPECT_EQ(tpm.fault_exhaustions(), 0u);
  // Recovery is not free: every retry re-charges the command plus the
  // backoff, so the faulty device's virtual clock runs ahead.
  EXPECT_GT(clock.now().ns, baseline_clock.now().ns);
}

TEST(ChaosTpm, Tpm2TransientFaultsRecoverWithinRetryBudget) {
  // The 2.0 device runs the identical driver-style retry loop; quotes and
  // policy-bound seals recover from transient chip faults the same way
  // the 1.2 commands do.
  SimClock clock;
  tpm::Tpm2Device::Options options;
  options.faults.transient_prob = 0.25;
  options.faults.max_retries = 10;
  options.faults.seed = chaos_seed() ^ 0x74326dull;
  tpm::Tpm2Device tpm(tpm::default_chip(), bytes_of("chaos-tpm2"), clock,
                      options);

  const auto selection = tpm::PcrSelection::of({16});
  for (int i = 0; i < 100; ++i) {
    auto blob = tpm.seal(tpm::Locality::kOs, selection, 0xff,
                         bytes_of("secret"));
    ASSERT_TRUE(blob.ok()) << "seal " << i << ": " << blob.error().message;
    auto out = tpm.unseal(tpm::Locality::kOs, blob.value());
    ASSERT_TRUE(out.ok()) << "unseal " << i << ": " << out.error().message;
    auto quote = tpm.quote(bytes_of("nonce"), selection);
    ASSERT_TRUE(quote.ok()) << "quote " << i << ": " << quote.error().message;
    ASSERT_TRUE(
        tpm::verify_tpm2_quote(tpm.ak_public(), quote.value(),
                               bytes_of("nonce"))
            .ok());
  }
  EXPECT_GT(tpm.transient_faults(), 0u);
  EXPECT_EQ(tpm.fault_retries(), tpm.transient_faults());
  EXPECT_EQ(tpm.fault_exhaustions(), 0u);
}

TEST(ChaosFullStack, Tpm2BackendConfirmsEverythingOverFaultyLink) {
  // The full trusted path on the 2.0 backend under the same fault plan
  // shape as the 1.2 run: faulty link, glitching TPM2 chip, retrying
  // client -- exactly-once must hold regardless of the quote format.
  sp::DeploymentConfig cfg;
  cfg.client_id = "chaos-tpm2";
  cfg.seed = bytes_of("chaos-full-stack-tpm2");
  cfg.tpm_key_bits = 1024;
  cfg.backend = tpm::QuoteFormat::kTpm2;
  // Pinned seed: the all-accepted assertion depends on the sampled fault
  // sequence (see file header).
  cfg.net.fault.seed = 0x7432666cull;
  cfg.net.fault.to_sp.drop_prob = 0.12;
  cfg.net.fault.to_sp.dup_prob = 0.06;
  cfg.net.fault.to_sp.reorder_prob = 0.04;
  cfg.net.fault.to_client.drop_prob = 0.12;
  cfg.net.fault.to_client.dup_prob = 0.06;
  cfg.net.fault.to_client.reorder_prob = 0.04;
  cfg.client_retry.max_attempts = 12;
  cfg.client_retry.backoff_base = SimDuration::millis(50);
  cfg.tpm_faults.transient_prob = 0.05;
  cfg.tpm_faults.max_retries = 10;

  sp::Deployment world(cfg);
  pal::HumanAgent agent(devices::HumanModel(perfect_human(), SimRng(13)), "");
  world.client().set_user_agent(&agent);

  ASSERT_TRUE(world.client().enroll().ok());
  const int kTxs = 20;
  for (int i = 0; i < kTxs; ++i) {
    const std::string summary = "pay " + std::to_string(i) + " EUR";
    agent.set_intended_summary(summary);
    auto outcome =
        world.client().submit_transaction(summary, bytes_of("payload"));
    ASSERT_TRUE(outcome.ok()) << "tx " << i << ": "
                              << outcome.error().message;
    EXPECT_TRUE(outcome.value().accepted) << "tx " << i;
  }
  const auto stats = world.sp().stats();
  EXPECT_EQ(stats.tx_accepted, static_cast<std::uint64_t>(kTxs));
  // Every accept was attributed to the 2.0 backend slice.
  EXPECT_EQ(stats.tx_accepted_format(tpm::QuoteFormat::kTpm2),
            static_cast<std::uint64_t>(kTxs));
  EXPECT_EQ(stats.enrolled_format(tpm::QuoteFormat::kTpm2), 1u);
  EXPECT_GT(world.client().retries(), 0u);
  EXPECT_GT(world.platform().tpm2().transient_faults(), 0u);
  EXPECT_EQ(world.platform().tpm2().fault_exhaustions(), 0u);
}

TEST(ChaosTpm, PersistentFaultExhaustsRetriesWithTypedError) {
  SimClock clock;
  tpm::TpmDevice::Options options;
  options.faults.transient_prob = 1.0;  // the chip never comes back
  options.faults.max_retries = 3;
  tpm::TpmDevice tpm(tpm::default_chip(), bytes_of("chaos-tpm-dead"), clock,
                     options);

  auto blob = tpm.seal(tpm::Locality::kOs, tpm::PcrSelection::of({16}),
                       0xff, bytes_of("secret"));
  ASSERT_FALSE(blob.ok());
  EXPECT_EQ(blob.code(), Err::kInternal);
  EXPECT_EQ(tpm.fault_exhaustions(), 1u);
  EXPECT_EQ(tpm.fault_retries(), 3u);  // the whole budget was spent
  EXPECT_EQ(tpm.transient_faults(), 4u);
}

}  // namespace
}  // namespace tp
