// Unit tests for the bounded, deadline-aware session table.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "proto/session_table.h"

namespace tp::proto {
namespace {

SimTime at(std::int64_t seconds) {
  return SimTime{seconds * 1'000'000'000};
}

SessionTableConfig small(std::size_t capacity,
                         SimDuration ttl = SimDuration::seconds(60)) {
  SessionTableConfig cfg;
  cfg.capacity = capacity;
  cfg.ttl = ttl;
  return cfg;
}

TEST(SessionTable, BeginFindEraseRoundTrip) {
  SessionTable table(small(8));
  const auto key = SessionTable::client_key("alice");
  EXPECT_EQ(table.find(key, at(0)), nullptr);

  SessionTable::Session& session = table.begin(key, at(0));
  EXPECT_EQ(session.state, SessionState::kChallengeSent);
  session.set_nonce(bytes_of("nonce-1"));

  SessionTable::Session* found = table.find(key, at(1));
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->state, SessionState::kChallengeSent);
  EXPECT_EQ(Bytes(found->nonce_view().begin(), found->nonce_view().end()),
            bytes_of("nonce-1"));
  EXPECT_EQ(table.size(), 1u);

  table.erase(key);
  EXPECT_EQ(table.find(key, at(1)), nullptr);
  EXPECT_EQ(table.size(), 0u);
}

TEST(SessionTable, ReBeginRecyclesTheSlot) {
  SessionTable table(small(4));
  const auto key = SessionTable::client_key("alice");
  for (int i = 0; i < 100; ++i) {
    SessionTable::Session& s = table.begin(key, at(i));
    s.set_nonce(bytes_of("nonce-" + std::to_string(i)));
  }
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.evictions(), 0u);
  // The session carries the LATEST begin's payload and deadline.
  SessionTable::Session* s = table.find(key, at(100));
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(Bytes(s->nonce_view().begin(), s->nonce_view().end()),
            bytes_of("nonce-99"));
}

TEST(SessionTable, ExpiryIsReportedDistinctly) {
  SessionTable table(small(4, SimDuration::seconds(30)));
  const auto key = SessionTable::tx_key(7);
  table.begin(key, at(0));

  // Before the deadline: live.
  bool expired = true;
  EXPECT_NE(table.find(key, at(29), &expired), nullptr);
  EXPECT_FALSE(expired);

  // After the deadline: collected, reported as expired.
  EXPECT_EQ(table.find(key, at(31), &expired), nullptr);
  EXPECT_TRUE(expired);
  EXPECT_EQ(table.expirations(), 1u);
  EXPECT_EQ(table.size(), 0u);

  // Gone now: a later find is a plain miss, not an expiry.
  EXPECT_EQ(table.find(key, at(32), &expired), nullptr);
  EXPECT_FALSE(expired);
}

TEST(SessionTable, BeginCollectsAllExpiredSessions) {
  SessionTable table(small(8, SimDuration::seconds(10)));
  for (std::uint64_t i = 0; i < 5; ++i) {
    table.begin(SessionTable::tx_key(i), at(static_cast<std::int64_t>(i)));
  }
  EXPECT_EQ(table.size(), 5u);
  // t=20: sessions begun at t=0..4 (deadlines 10..14) are all dead.
  table.begin(SessionTable::tx_key(100), at(20));
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.expirations(), 5u);
}

TEST(SessionTable, EvictsLeastRecentlyBegunWhenFull) {
  SessionTable table(small(4, SimDuration{0}));  // no TTL: pure pressure
  for (std::uint64_t i = 0; i < 10; ++i) {
    table.begin(SessionTable::tx_key(i), at(0));
  }
  EXPECT_EQ(table.size(), 4u);
  EXPECT_EQ(table.evictions(), 6u);
  // Survivors are the four most recently begun.
  for (std::uint64_t i = 0; i < 6; ++i) {
    EXPECT_EQ(table.find(SessionTable::tx_key(i), at(0)), nullptr) << i;
  }
  for (std::uint64_t i = 6; i < 10; ++i) {
    EXPECT_NE(table.find(SessionTable::tx_key(i), at(0)), nullptr) << i;
  }
}

TEST(SessionTable, RecyclingRefreshesEvictionOrder) {
  SessionTable table(small(2, SimDuration{0}));
  const auto a = SessionTable::client_key("a");
  const auto b = SessionTable::client_key("b");
  const auto c = SessionTable::client_key("c");
  table.begin(a, at(0));
  table.begin(b, at(1));
  table.begin(a, at(2));  // refresh a: b is now the oldest
  table.begin(c, at(3));  // capacity 2 -> evicts b
  EXPECT_NE(table.find(a, at(3)), nullptr);
  EXPECT_EQ(table.find(b, at(3)), nullptr);
  EXPECT_NE(table.find(c, at(3)), nullptr);
}

TEST(SessionTable, ZeroTtlDisablesExpiry) {
  SessionTable table(small(4, SimDuration{0}));
  const auto key = SessionTable::client_key("alice");
  table.begin(key, at(0));
  bool expired = true;
  EXPECT_NE(table.find(key, at(1'000'000), &expired), nullptr);
  EXPECT_FALSE(expired);
  EXPECT_EQ(table.expirations(), 0u);
}

TEST(SessionTable, MemoryIsConstantUnderChurn) {
  SessionTable table(small(64, SimDuration::seconds(5)));
  const std::size_t flat = table.memory_bytes();
  EXPECT_GT(flat, 0u);
  for (std::uint64_t i = 0; i < 10'000; ++i) {
    table.begin(SessionTable::tx_key(i),
                at(static_cast<std::int64_t>(i / 100)));
    if (i % 3 == 0) table.erase(SessionTable::tx_key(i));
    ASSERT_LE(table.size(), 64u);
  }
  EXPECT_EQ(table.memory_bytes(), flat);
}

TEST(SessionTable, KeysAreDeterministicAndDistinct) {
  EXPECT_EQ(SessionTable::client_key("alice"),
            SessionTable::client_key("alice"));
  EXPECT_NE(SessionTable::client_key("alice"),
            SessionTable::client_key("bob"));
  EXPECT_EQ(SessionTable::tx_key(1), SessionTable::tx_key(1));
  EXPECT_NE(SessionTable::tx_key(1), SessionTable::tx_key(2));
  // Client and tx key spaces do not trivially collide.
  EXPECT_NE(SessionTable::client_key("1"), SessionTable::tx_key(1));
}

TEST(SessionTable, CapacityZeroClampsToOne) {
  SessionTable table(small(0, SimDuration{0}));
  EXPECT_EQ(table.capacity(), 1u);
  table.begin(SessionTable::tx_key(1), at(0));
  table.begin(SessionTable::tx_key(2), at(0));
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.evictions(), 1u);
}

TEST(SessionTable, EraseKeepsProbeChainsIntact) {
  // Fill a small table (forcing clustered probe chains), erase every
  // other key, and verify the survivors are all still findable -- the
  // backward-shift deletion must not orphan displaced entries.
  SessionTable table(small(32, SimDuration{0}));
  for (std::uint64_t i = 0; i < 32; ++i) {
    table.begin(SessionTable::tx_key(i), at(0));
  }
  for (std::uint64_t i = 0; i < 32; i += 2) {
    table.erase(SessionTable::tx_key(i));
  }
  EXPECT_EQ(table.size(), 16u);
  for (std::uint64_t i = 0; i < 32; ++i) {
    if (i % 2 == 0) {
      EXPECT_EQ(table.find(SessionTable::tx_key(i), at(0)), nullptr) << i;
    } else {
      EXPECT_NE(table.find(SessionTable::tx_key(i), at(0)), nullptr) << i;
    }
  }
  // And eviction order survived the shifts: refill to capacity, then
  // overflow by four -- the four evicted must be the OLDEST survivors
  // (keys 1, 3, 5, 7), not anything the shifts touched later.
  for (std::uint64_t i = 100; i < 120; ++i) {
    table.begin(SessionTable::tx_key(i), at(0));
  }
  EXPECT_EQ(table.size(), 32u);
  EXPECT_EQ(table.evictions(), 4u);
  for (std::uint64_t i : {1u, 3u, 5u, 7u}) {
    EXPECT_EQ(table.find(SessionTable::tx_key(i), at(0)), nullptr) << i;
  }
  for (std::uint64_t i : {9u, 11u, 13u, 15u}) {
    EXPECT_NE(table.find(SessionTable::tx_key(i), at(0)), nullptr) << i;
  }
  for (std::uint64_t i = 100; i < 120; ++i) {
    EXPECT_NE(table.find(SessionTable::tx_key(i), at(0)), nullptr) << i;
  }
}

}  // namespace
}  // namespace tp::proto
