// Crash-recovery suite (`ctest -L crash`, probabilistic members also
// under `-L chaos`): exactly-once across process deaths.
//
// Three layers of the crash story:
//   - SP: restore-from-journal is *equivalent* to the pre-crash SP --
//     byte-identical retransmit replies and identical handoff/export
//     output, across randomized workloads, crash points and torn
//     tails (the property the write-ahead contract exists to provide).
//     Enrollment state survives too: a client admitted before the
//     crash submits fresh transactions afterwards, verified against
//     the recovered attestation key.
//   - svc: an injected storage crash mid-frame flips the service into
//     crashed mode (kShutdown for everything, nothing acked that the
//     journal did not see); a replacement built from the same log
//     replays cached responses byte-identically.
//   - cluster: the PR 5 invariant extended from lossy links to dying
//     processes -- 10k transactions at ~26% injected faults with
//     shards killed at random journal offsets and restarted mid-run,
//     client-side accepts == cluster-side settles, zero
//     double-execution.
//
// Probabilistic members honour TP_CHAOS_SEED (CI randomizes it; the
// seed is printed so any failure is replayable).
#include <gtest/gtest.h>

#include <cstdlib>
#include <iostream>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "cluster/verifier_cluster.h"
#include "core/messages.h"
#include "pal/human_agent.h"
#include "sp/fleet.h"
#include "sp/service_provider.h"
#include "store/durable_log.h"
#include "store/shard_state.h"
#include "store/storage_backend.h"
#include "svc/verifier_service.h"

namespace tp {
namespace {

using core::MsgType;
using core::TxChallenge;
using core::TxConfirm;
using core::TxResult;
using core::TxSubmit;
using core::Verdict;
using store::CrashInjected;
using store::DurableLog;
using store::DurableLogConfig;
using store::MemoryBackend;

std::uint64_t chaos_seed() {
  static const std::uint64_t seed = [] {
    const char* env = std::getenv("TP_CHAOS_SEED");
    const std::uint64_t s =
        env != nullptr ? std::strtoull(env, nullptr, 10) : 0xc7a05ull;
    std::cout << "[chaos] seed = " << s << " (set TP_CHAOS_SEED=" << s
              << " to reproduce)" << std::endl;
    return s;
  }();
  return seed;
}

Bytes submit_frame(const std::string& client, const std::string& summary) {
  TxSubmit submit;
  submit.client_id = client;
  submit.summary = summary;
  submit.payload = bytes_of("payload:" + summary);
  return core::envelope(MsgType::kTxSubmit, submit.serialize());
}

Bytes confirm_frame(const std::string& client, std::uint64_t tx_id,
                    Verdict verdict = Verdict::kConfirmed) {
  TxConfirm confirm;
  confirm.client_id = client;
  confirm.tx_id = tx_id;
  confirm.verdict = verdict;
  return core::envelope(MsgType::kTxConfirm, confirm.serialize());
}

std::uint64_t challenge_tx_id(BytesView response) {
  auto opened = core::open_envelope(response);
  EXPECT_TRUE(opened.ok());
  auto challenge = TxChallenge::deserialize(opened.value().second);
  EXPECT_TRUE(challenge.ok());
  return challenge.ok() ? challenge.value().tx_id : 0;
}

bool result_accepted(BytesView response) {
  auto opened = core::open_envelope(response);
  if (!opened.ok() || opened.value().first != MsgType::kTxResult) return false;
  auto result = TxResult::deserialize(opened.value().second);
  return result.ok() && result.value().accepted;
}

/// Canonical comparison key for everything a shard must not forget,
/// with the session-timeline position normalized away: retransmits
/// (answered from cache, never journaled) legitimately advance the live
/// SP's clock past the journal's last record.
Bytes state_fingerprint(const sp::ServiceProvider& sp) {
  store::ShardState state = sp.export_state();
  state.source_now_ns = 0;
  return store::serialize_shard_state(state);
}

/// Asserts two SPs answered one frame equivalently. Byte-identical is
/// the norm (cached replies, deterministic rejects). The one sanctioned
/// divergence: a TxSubmit that misses the dedup cache on BOTH sides
/// (slot overwritten -- direct-mapped, collisions overwrite) opens a
/// fresh session, and recovery reseeds the nonce DRBG (the journal does
/// not capture stream positions; re-issuing pre-crash nonces would be a
/// security bug), so the fresh challenges carry the same tx_id -- the
/// tx-id cursor IS recovered -- but different nonces. An asymmetric
/// cache miss still fails loudly: the fresh side would mint a *new*
/// tx_id while the cached side replays the old one.
void expect_equivalent_reply(const Bytes& a, const Bytes& b,
                             const std::string& context) {
  if (a == b) return;
  auto oa = core::open_envelope(a);
  auto ob = core::open_envelope(b);
  ASSERT_TRUE(oa.ok() && ob.ok()) << context;
  ASSERT_EQ(oa.value().first, MsgType::kTxChallenge) << context;
  ASSERT_EQ(ob.value().first, MsgType::kTxChallenge) << context;
  auto ca = TxChallenge::deserialize(oa.value().second);
  auto cb = TxChallenge::deserialize(ob.value().second);
  ASSERT_TRUE(ca.ok() && cb.ok()) << context;
  EXPECT_EQ(ca.value().tx_id, cb.value().tx_id) << context;
  EXPECT_EQ(a.size(), b.size()) << context;
}

/// Zeroes the per-session secrets (nonces and the cached responses that
/// embed them) so states diverging ONLY in freshly-minted nonces compare
/// equal. Used after a lockstep replay that legitimately minted fresh
/// challenges on both sides (see expect_equivalent_reply); the strict
/// pre-replay fingerprint comparison has already pinned the *recovered*
/// nonces byte-exactly.
void strip_session_secrets(store::ShardState& state) {
  for (auto& entry : state.tx_sessions) {
    entry.session.nonce.fill(0);
    entry.session.response.fill(0);
  }
}

/// Canonical bytes of a HandoffBundle (minus source_now, same
/// normalization as state_fingerprint).
Bytes bundle_fingerprint(sp::HandoffBundle bundle) {
  store::ShardState state;
  state.enroll_sessions = std::move(bundle.enroll_sessions);
  state.tx_sessions = std::move(bundle.tx_sessions);
  for (auto& [id, context] : bundle.enrolled) {
    state.enrolled.push_back({id, context.key().serialize()});
  }
  state.replay_digests = bundle.replay_digests;
  for (const auto& row : bundle.dedup) {
    state.dedup.push_back({row.client, row.digest, row.tx_id});
  }
  return store::serialize_shard_state(state);
}

// -------------------------------------------------- restore equivalence

/// Randomized raw-frame workload against a durable SP: fresh submits,
/// confirms (accept and user-reject), byte-identical retransmits of
/// older frames, and the occasional confirm for a bogus tx id. Returns
/// every frame that received a reply.
struct Workload {
  std::vector<Bytes> frames;
  std::int64_t now_ns = 0;
};

Workload run_workload(sp::ServiceProvider& sp, std::mt19937_64& rng,
                      std::size_t frame_count) {
  Workload w;
  std::map<std::string, std::uint64_t> open_tx;
  for (std::size_t i = 0; i < frame_count; ++i) {
    w.now_ns += static_cast<std::int64_t>(rng() % 5'000'000);
    const std::string client = "prop-client-" + std::to_string(rng() % 6);
    Bytes frame;
    const std::uint64_t pick = rng() % 100;
    if (pick < 45 || w.frames.empty()) {
      frame = submit_frame(client, "pay " + std::to_string(rng() % 1000));
    } else if (pick < 70 && !open_tx.empty()) {
      auto it = open_tx.begin();
      std::advance(it, static_cast<std::ptrdiff_t>(rng() % open_tx.size()));
      frame = confirm_frame(it->first, it->second,
                            rng() % 5 == 0 ? Verdict::kRejected
                                           : Verdict::kConfirmed);
      open_tx.erase(it);
    } else if (pick < 80) {
      // A confirm for a tx id nobody issued: rejected, never journaled.
      frame = confirm_frame(client, 0xdead0000 + rng() % 100);
    } else {
      // Byte-identical retransmission of an arbitrary earlier frame.
      frame = w.frames[rng() % w.frames.size()];
    }
    const Bytes reply = sp.handle_frame(frame, SimTime{w.now_ns});
    if (auto opened = core::open_envelope(reply);
        opened.ok() && opened.value().first == MsgType::kTxChallenge) {
      auto challenge = TxChallenge::deserialize(opened.value().second);
      if (challenge.ok()) open_tx[client] = challenge.value().tx_id;
    }
    w.frames.push_back(std::move(frame));
  }
  return w;
}

TEST(RestoreEquivalence, CleanKillRestoreMatchesThePreCrashSp) {
  // Property: across randomized workloads, an SP rebuilt from
  // snapshot+journal answers every retransmit byte-identically to the
  // SP that wrote them, and exports identical handoff state.
  std::mt19937_64 rng(chaos_seed());
  for (int trial = 0; trial < 5; ++trial) {
    MemoryBackend backend;
    DurableLogConfig lc;
    lc.backend = &backend;
    // Odd trials compact aggressively so recovery crosses snapshot
    // boundaries, not just journal replay.
    lc.compact_journal_bytes = (trial % 2 != 0) ? 4096 : 0;

    sp::SpConfig base;
    base.require_trusted_path = false;
    base.seed = bytes_of("restore-prop-" + std::to_string(trial));

    DurableLog log_a(lc);
    sp::SpConfig cfg_a = base;
    cfg_a.durable = &log_a;
    sp::ServiceProvider sp_a(cfg_a);
    Workload w = run_workload(sp_a, rng, 60 + rng() % 80);

    // Clean kill: the process dies between frames; a successor recovers
    // from the same backend.
    DurableLog log_b(lc);
    sp::SpConfig cfg_b = base;
    cfg_b.durable = &log_b;
    sp::ServiceProvider sp_b(cfg_b);

    EXPECT_EQ(state_fingerprint(sp_b), state_fingerprint(sp_a))
        << "trial " << trial;

    // Every recorded frame replays equivalently on both -- cached
    // replies byte-for-byte, re-executions in lockstep.
    for (const Bytes& frame : w.frames) {
      const Bytes a = sp_a.handle_frame(frame, SimTime{w.now_ns});
      const Bytes b = sp_b.handle_frame(frame, SimTime{w.now_ns});
      expect_equivalent_reply(a, b, "clean-kill trial " +
                                        std::to_string(trial));
    }

    // And what they would hand to a rebalance is the same state (nonces
    // stripped: the replay above legitimately minted fresh ones on each
    // side; the recovered nonces were compared byte-exactly before it).
    const auto everything = [](const proto::SessionTable::Key&) {
      return true;
    };
    const auto stripped = [](sp::HandoffBundle bundle) {
      store::ShardState state;
      state.enroll_sessions = std::move(bundle.enroll_sessions);
      state.tx_sessions = std::move(bundle.tx_sessions);
      strip_session_secrets(state);
      Bytes sessions = store::serialize_shard_state(state);
      bundle.enroll_sessions.clear();
      bundle.tx_sessions.clear();
      Bytes rest = bundle_fingerprint(std::move(bundle));
      return concat(sessions, rest);
    };
    EXPECT_EQ(stripped(sp_b.extract_for_handoff(everything)),
              stripped(sp_a.extract_for_handoff(everything)))
        << "trial " << trial;
  }
}

TEST(RestoreEquivalence, TornTailRestoreMatchesAReplayOfTheAckedPrefix) {
  // Property: kill the SP *mid-append* at a random journal offset. The
  // torn frame never released a reply, so recovery must equal a fresh
  // SP fed exactly the frames that were answered -- nothing more (no
  // half-applied frame), nothing less (every acked frame durable).
  std::mt19937_64 rng(chaos_seed() ^ 0x70aall);
  for (int trial = 0; trial < 5; ++trial) {
    MemoryBackend backend;
    DurableLogConfig lc;
    lc.backend = &backend;
    lc.compact_journal_bytes = 0;  // keep the whole history in the journal

    sp::SpConfig base;
    base.require_trusted_path = false;
    base.seed = bytes_of("torn-prop-" + std::to_string(trial));

    DurableLog log_a(lc);
    sp::SpConfig cfg_a = base;
    cfg_a.durable = &log_a;
    sp::ServiceProvider sp_a(cfg_a);

    // Warm up, then arm a crash a short random distance into the
    // future journal and drive frames until the append dies.
    std::mt19937_64 workload_rng(0xbeef0000 + trial);
    Workload w = run_workload(sp_a, workload_rng, 30);
    backend.crash_at_bytes(backend.appended_total() + 1 + rng() % 900);

    std::vector<Bytes> replied = w.frames;
    std::int64_t now_ns = w.now_ns;
    std::map<std::string, std::uint64_t> open_tx;
    bool crashed = false;
    for (int i = 0; i < 200 && !crashed; ++i) {
      now_ns += static_cast<std::int64_t>(workload_rng() % 5'000'000);
      const std::string client =
          "prop-client-" + std::to_string(workload_rng() % 6);
      Bytes frame;
      if (workload_rng() % 2 == 0 || open_tx.empty()) {
        frame = submit_frame(client, "pay " + std::to_string(i));
      } else {
        auto it = open_tx.begin();
        frame = confirm_frame(it->first, it->second);
        open_tx.erase(it);
      }
      try {
        const Bytes reply = sp_a.handle_frame(frame, SimTime{now_ns});
        if (auto opened = core::open_envelope(reply);
            opened.ok() && opened.value().first == MsgType::kTxChallenge) {
          auto challenge = TxChallenge::deserialize(opened.value().second);
          if (challenge.ok()) open_tx[client] = challenge.value().tx_id;
        }
        replied.push_back(frame);
      } catch (const CrashInjected&) {
        crashed = true;  // this frame was never acked
      }
    }
    ASSERT_TRUE(crashed) << "trial " << trial
                         << ": crash point never reached";

    // Successor recovers the torn journal...
    backend.clear_crash_point();
    DurableLog log_b(lc);
    sp::SpConfig cfg_b = base;
    cfg_b.durable = &log_b;
    sp::ServiceProvider sp_b(cfg_b);

    // ...and must equal a fresh SP that processed exactly the acked
    // frames. The oracle gets its own empty log: construction-time
    // recovery reseeds the DRBG with "sp-recovery:1:", exactly like
    // sp_a's empty-journal start, so both mint identical nonces.
    MemoryBackend oracle_backend;
    DurableLogConfig oracle_lc;
    oracle_lc.backend = &oracle_backend;
    oracle_lc.compact_journal_bytes = 0;
    DurableLog oracle_log(oracle_lc);
    sp::SpConfig cfg_c = base;
    cfg_c.durable = &oracle_log;
    sp::ServiceProvider oracle(cfg_c);
    {
      std::mt19937_64 replay_rng(0xbeef0000 + trial);
      Workload replayed = run_workload(oracle, replay_rng, 30);
      ASSERT_EQ(replayed.frames.size(), w.frames.size());
      for (std::size_t i = replayed.frames.size(); i < replied.size(); ++i) {
        // now values replay exactly: same rng, same consumption order.
        replayed.now_ns +=
            static_cast<std::int64_t>(replay_rng() % 5'000'000);
        replay_rng();  // the client pick
        replay_rng();  // the action pick
        oracle.handle_frame(replied[i], SimTime{replayed.now_ns});
      }
    }

    EXPECT_EQ(state_fingerprint(sp_b), state_fingerprint(oracle))
        << "trial " << trial;
    for (const Bytes& frame : replied) {
      const Bytes b = sp_b.handle_frame(frame, SimTime{now_ns});
      const Bytes o = oracle.handle_frame(frame, SimTime{now_ns});
      expect_equivalent_reply(b, o,
                              "torn-tail trial " + std::to_string(trial));
    }
  }
}

TEST(RestoreEquivalence, EnrollmentSurvivesCrashAndNewTransactionsVerify) {
  // Full-stack variant: real TPM enrollment, then a crash. The
  // recovered SP must verify *fresh* confirmation signatures against
  // the attestation keys it recovered from the journal -- key blobs
  // round-tripped through serialize/deserialize, verify contexts
  // rebuilt.
  sp::FleetConfig fleet_config;
  fleet_config.num_clients = 2;
  fleet_config.seed = bytes_of("crash-enroll");
  fleet_config.tpm_key_bits = 768;
  fleet_config.client_key_bits = 768;
  sp::Fleet fleet(fleet_config);

  MemoryBackend backend;
  DurableLogConfig lc;
  lc.backend = &backend;

  DurableLog log_a(lc);
  sp::SpConfig cfg_a = fleet.sp_config();
  cfg_a.durable = &log_a;
  auto sp_a = std::make_unique<sp::ServiceProvider>(cfg_a);
  fleet.route_frames_to([&sp_a](const std::string&, BytesView frame) {
    return sp_a->handle_frame(frame);
  });

  std::vector<std::unique_ptr<pal::HumanAgent>> users;
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    auto agent = std::make_unique<pal::HumanAgent>(
        devices::HumanModel(devices::HumanParams{}, SimRng(7000 + i)), "");
    fleet.client(i).set_user_agent(agent.get());
    users.push_back(std::move(agent));
  }
  ASSERT_EQ(fleet.enroll_all(), fleet.size());
  users[0]->set_intended_summary("pay before crash");
  auto before = fleet.client(0).submit_transaction("pay before crash",
                                                   bytes_of("order 1"));
  ASSERT_TRUE(before.ok());
  EXPECT_TRUE(before.value().accepted);

  // Crash. The successor recovers both enrollments and the settled tx.
  sp_a.reset();
  DurableLog log_b(lc);
  sp::SpConfig cfg_b = fleet.sp_config();
  cfg_b.durable = &log_b;
  sp::ServiceProvider sp_b(cfg_b);
  fleet.route_frames_to([&sp_b](const std::string&, BytesView frame) {
    return sp_b.handle_frame(frame);
  });
  EXPECT_EQ(sp_b.stats_snapshot().enrolled, fleet.size());
  EXPECT_EQ(sp_b.stats_snapshot().tx_accepted, 1u);

  // Fresh transactions from both clients verify against recovered keys
  // (and the reseeded nonce stream issues challenges that still work).
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    const std::string summary = "pay after crash " + std::to_string(i);
    users[i]->set_intended_summary(summary);
    auto outcome =
        fleet.client(i).submit_transaction(summary, bytes_of("order 2"));
    ASSERT_TRUE(outcome.ok()) << fleet.client_id(i) << ": "
                              << outcome.error().message;
    EXPECT_TRUE(outcome.value().accepted) << fleet.client_id(i);
  }
  EXPECT_EQ(sp_b.stats_snapshot().tx_accepted, 1u + fleet.size());
}

// ----------------------------------------------------------- svc layer

TEST(CrashedService, DurableConfigRequiresASingleWorker) {
  MemoryBackend backend;
  DurableLogConfig lc;
  lc.backend = &backend;
  DurableLog log(lc);
  svc::SvcConfig config;
  config.num_workers = 4;
  config.sp.require_trusted_path = false;
  config.sp.durable = &log;
  EXPECT_THROW(svc::VerifierService{config}, std::invalid_argument);
}

TEST(CrashedService, InjectedCrashFlipsToShutdownAndSuccessorReplays) {
  MemoryBackend backend;
  DurableLogConfig lc;
  lc.backend = &backend;

  svc::SvcConfig config;
  config.num_workers = 1;
  config.sp.require_trusted_path = false;

  DurableLog log_a(lc);
  config.sp.durable = &log_a;
  Bytes confirm;
  Bytes settled_reply;
  {
    svc::VerifierService service(config);
    service.start();
    EXPECT_FALSE(service.crashed());
    const std::string id = "svc-crash-client";
    const auto challenge = service.call(id, submit_frame(id, "pay 1"));
    ASSERT_EQ(challenge.status, svc::SvcStatus::kOk);
    confirm = confirm_frame(id, challenge_tx_id(challenge.frame));
    const auto settled = service.call(id, confirm);
    ASSERT_EQ(settled.status, svc::SvcStatus::kOk);
    ASSERT_TRUE(result_accepted(settled.frame));
    settled_reply = settled.frame;

    // Die on the next journal append: the frame gets kShutdown (it was
    // never acked), the service latches crashed mode, and everything
    // after is refused without touching the poisoned SP.
    backend.crash_at_bytes(backend.appended_total() + 7);
    const auto dead = service.call(id, submit_frame(id, "pay 2"));
    EXPECT_EQ(dead.status, svc::SvcStatus::kShutdown);
    EXPECT_TRUE(service.crashed());
    EXPECT_EQ(service.call(id, submit_frame(id, "pay 3")).status,
              svc::SvcStatus::kShutdown);
    service.drain();
  }

  // The replacement recovers from the same log: the settled confirm
  // replays byte-identically, and the torn submit was never acked so
  // its retry executes fresh.
  backend.clear_crash_point();
  DurableLog log_b(lc);
  config.sp.durable = &log_b;
  svc::VerifierService successor(config);
  successor.start();
  EXPECT_FALSE(successor.crashed());
  const auto replay = successor.call("svc-crash-client", confirm);
  ASSERT_EQ(replay.status, svc::SvcStatus::kOk);
  EXPECT_EQ(replay.frame, settled_reply);
  EXPECT_EQ(successor.stats().tx_accepted, 1u);  // replayed, not re-run

  const auto retry =
      successor.call("svc-crash-client", submit_frame("svc-crash-client",
                                                      "pay 2"));
  EXPECT_EQ(retry.status, svc::SvcStatus::kOk);
  successor.drain();
}

// -------------------------------------------------------- cluster chaos

TEST(CrashChaos, RestartPreservesAcceptCountsAcrossGenerations) {
  // Focused fault-free cousin of the big run: settled counts must ride
  // the journal across several kill/restart generations of one shard.
  cluster::ClusterConfig cc;
  cc.num_shards = 2;
  cc.svc.sp.require_trusted_path = false;
  cc.durable_backend_factory = [](std::uint32_t) {
    return std::make_unique<MemoryBackend>();
  };
  cc.compact_journal_bytes = 8 * 1024;
  cluster::VerifierCluster cluster(cc);
  cluster.start();

  const std::string id = "count-client";
  const std::uint32_t home = cluster.shard_for(id);
  std::uint64_t accepted = 0;
  for (int generation = 0; generation < 4; ++generation) {
    for (int i = 0; i < 25; ++i) {
      const auto challenge =
          cluster.call(id, submit_frame(id, "pay g" +
                                                std::to_string(generation) +
                                                " n" + std::to_string(i)));
      ASSERT_EQ(challenge.status, svc::SvcStatus::kOk);
      const auto result = cluster.call(
          id, confirm_frame(id, challenge_tx_id(challenge.frame)));
      ASSERT_EQ(result.status, svc::SvcStatus::kOk);
      ASSERT_TRUE(result_accepted(result.frame));
      ++accepted;
    }
    EXPECT_EQ(cluster.stats().tx_accepted, accepted)
        << "generation " << generation << " pre-restart";
    // Clean-ish kill: arm just past the current offset, poke the shard
    // until it dies, restart, and the count must survive.
    cluster.kill_shard(home,
                       cluster.shard_backend(home).appended_total() + 1);
    while (!cluster.shard_crashed(home)) {
      (void)cluster.call(id, submit_frame(id, "poke g" +
                                                  std::to_string(generation)));
    }
    cluster.restart_shard(home);
    EXPECT_EQ(cluster.stats().tx_accepted, accepted)
        << "generation " << generation << " post-restart";
  }
  EXPECT_EQ(cluster.shard_restarts(), 4u);
  cluster.drain();
}

TEST(CrashChaos, TenThousandTxExactlyOnceThroughDyingShards) {
  // The acceptance bar: 10k transactions through a 4-shard durable
  // cluster behind a lossy "network" (~26% of deliveries dropped or
  // duplicated), with shards killed at random journal offsets (torn
  // writes included) and restarted from their journals throughout, plus
  // one live shard join mid-run. The client-side and cluster-side
  // accept counts must agree exactly: retransmits, duplicate
  // deliveries, rebalances and process deaths may never double-execute
  // or lose a settled payment.
  const std::uint64_t seed = chaos_seed();
  std::mt19937_64 rng(seed ^ 0xc4a54ull);
  std::uniform_real_distribution<double> coin(0.0, 1.0);

  cluster::ClusterConfig cc;
  cc.num_shards = 4;
  cc.svc.queue_depth = 64;
  cc.svc.default_deadline = std::chrono::milliseconds(2000);
  cc.svc.sp.require_trusted_path = false;
  cc.durable_backend_factory = [](std::uint32_t) {
    return std::make_unique<MemoryBackend>();
  };
  // Aggressive compaction so the run crosses many snapshot cycles and
  // kills land in the compaction crash window too.
  cc.compact_journal_bytes = 128 * 1024;
  cluster::VerifierCluster cluster(cc);
  cluster.start();

  std::uint64_t kills_armed = 0;
  const auto arm_random_kill = [&] {
    const auto ids = cluster.shard_ids();
    const std::uint32_t victim =
        ids[static_cast<std::size_t>(rng() % ids.size())];
    // A short random distance into the shard's journal future: the
    // crossing append keeps a torn prefix -- mid-record deaths by
    // construction.
    cluster.kill_shard(victim, cluster.shard_backend(victim).appended_total() +
                                   1 + rng() % 900);
    ++kills_armed;
  };
  const auto restart_crashed = [&] {
    for (const std::uint32_t id : cluster.shard_ids()) {
      if (cluster.shard_crashed(id)) cluster.restart_shard(id);
    }
  };

  std::uint64_t drops = 0;
  std::uint64_t dups = 0;
  std::uint64_t give_ups = 0;
  // Lossy delivery: drop = the frame never arrives (client times out
  // and retries); duplicate = the same frame lands twice (the second
  // copy must be answered from settled state, never re-executed). A
  // kShutdown reply is a dead shard: restart it and retry -- exactly
  // what a deployed client's retry loop plus an operator's supervisor
  // would do.
  const auto deliver = [&](const std::string& id, const Bytes& frame) {
    for (int attempt = 0; attempt < 64; ++attempt) {
      const double p = coin(rng);
      if (p < 0.13) {
        ++drops;
        continue;
      }
      const auto response = cluster.call(id, frame);
      if (p < 0.21) {
        ++dups;
        (void)cluster.call(id, frame);
      }
      if (response.status == svc::SvcStatus::kOk) return response.frame;
      restart_crashed();
    }
    ++give_ups;
    return Bytes{};
  };

  const std::size_t kClients = 16;
  const std::size_t kRounds = 625;  // 16 * 625 = 10,000 transactions
  std::uint64_t client_accepts = 0;
  std::uint64_t next_kill = 20 + rng() % 30;
  for (std::size_t round = 0; round < kRounds; ++round) {
    for (std::size_t c = 0; c < kClients; ++c) {
      const std::string id = "crash-client-" + std::to_string(c);
      const Bytes challenge =
          deliver(id, submit_frame(id, "pay " + std::to_string(round)));
      ASSERT_FALSE(challenge.empty()) << id << " round " << round;
      const Bytes result =
          deliver(id, confirm_frame(id, challenge_tx_id(challenge)));
      ASSERT_FALSE(result.empty()) << id << " round " << round;
      if (result_accepted(result)) ++client_accepts;
      if (--next_kill == 0) {
        arm_random_kill();
        next_kill = 20 + rng() % 30;
      }
    }
    if (round == kRounds / 2) {
      // Live join with kills in flight: handoff + durability compose.
      cluster.add_shard();
    }
  }
  restart_crashed();

  EXPECT_EQ(give_ups, 0u);
  EXPECT_EQ(client_accepts, static_cast<std::uint64_t>(kClients * kRounds));
  // Zero double-execution, zero loss: what the clients counted is
  // exactly what the cluster settled -- across drops, duplicates, a
  // rebalance and every process death.
  EXPECT_EQ(cluster.stats().tx_accepted, client_accepts);
  EXPECT_GT(kills_armed, 100u);
  EXPECT_GT(cluster.shard_restarts(), 20u);
  EXPECT_GT(drops, 1000u);
  EXPECT_GT(dups, 500u);
  std::cout << "[crash-chaos] " << client_accepts << " accepts, "
            << kills_armed << " kills armed, " << cluster.shard_restarts()
            << " restarts, " << drops << " drops, " << dups << " dups"
            << std::endl;
  cluster.drain();
}

}  // namespace
}  // namespace tp
