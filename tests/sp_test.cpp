// Service-provider and end-to-end protocol tests: the verifier logic,
// enrollment edge cases, replay defence, and the full benign flow over
// the simulated network.
#include <gtest/gtest.h>

#include "core/trusted_path_pal.h"
#include "pal/human_agent.h"
#include "sp/deployment.h"

namespace tp::sp {
namespace {

using core::TrustedPathClient;
using core::Verdict;

devices::HumanParams perfect_human() {
  devices::HumanParams p;
  p.typo_prob = 0.0;
  p.attention = 1.0;
  return p;
}

DeploymentConfig fast_config(const std::string& id = "alice") {
  DeploymentConfig cfg;
  cfg.client_id = id;
  cfg.seed = bytes_of("sp-test:" + id);
  cfg.tpm_key_bits = 768;
  cfg.client_key_bits = 768;
  return cfg;
}

class EndToEndTest : public ::testing::Test {
 protected:
  EndToEndTest()
      : world_(fast_config()),
        agent_(devices::HumanModel(perfect_human(), SimRng(11)), "") {
    world_.client().set_user_agent(&agent_);
  }

  Status enroll() { return world_.client().enroll(); }

  Result<TrustedPathClient::ConfirmOutcome> confirm(
      const std::string& summary) {
    agent_.set_intended_summary(summary);
    return world_.client().submit_transaction(summary, bytes_of("payload"));
  }

  Deployment world_;
  pal::HumanAgent agent_;
};

// --------------------------------------------------------------- Benign

TEST_F(EndToEndTest, EnrollmentSucceeds) {
  ASSERT_TRUE(enroll().ok());
  EXPECT_TRUE(world_.client().enrolled());
  EXPECT_TRUE(world_.sp().is_enrolled("alice"));
  EXPECT_EQ(world_.sp().stats().enrolled, 1u);
}

TEST_F(EndToEndTest, HappyPathTransactionAccepted) {
  ASSERT_TRUE(enroll().ok());
  auto outcome = confirm("pay 100 EUR to bob");
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome.value().accepted);
  EXPECT_EQ(outcome.value().verdict, Verdict::kConfirmed);
  EXPECT_EQ(world_.sp().stats().tx_accepted, 1u);
}

TEST_F(EndToEndTest, MultipleTransactionsEachNeedConfirmation) {
  ASSERT_TRUE(enroll().ok());
  for (int i = 0; i < 3; ++i) {
    auto outcome = confirm("pay " + std::to_string(i) + " EUR");
    ASSERT_TRUE(outcome.ok());
    EXPECT_TRUE(outcome.value().accepted);
  }
  EXPECT_EQ(world_.sp().stats().tx_accepted, 3u);
}

TEST_F(EndToEndTest, UserRejectionIsRespected) {
  ASSERT_TRUE(enroll().ok());
  // The human intends a different transaction than what arrives.
  agent_.set_intended_summary("pay 1 EUR to bob");
  auto outcome =
      world_.client().submit_transaction("pay 9999 EUR", bytes_of("p"));
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(outcome.value().accepted);
  EXPECT_EQ(outcome.value().verdict, Verdict::kRejected);
}

TEST_F(EndToEndTest, SubmitBeforeEnrollFails) {
  auto outcome = confirm("pay 1");
  EXPECT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.code(), Err::kBadState);
}

TEST_F(EndToEndTest, SessionTimingIsPlausible) {
  ASSERT_TRUE(enroll().ok());
  auto outcome = confirm("pay 100 EUR to bob");
  ASSERT_TRUE(outcome.ok());
  const auto& t = outcome.value().timing;
  // The paper's headline: machine overhead is dominated by TPM ops
  // (unseal at minimum), human time dominates the total.
  EXPECT_GT(t.tpm.ns, tpm::default_chip().unseal.ns / 2);
  EXPECT_GT(t.user.ns, SimDuration::seconds(1).ns);
  EXPECT_GT(t.total.ns, t.machine().ns);
  EXPECT_LT(t.machine().ns, SimDuration::seconds(5).ns);
}

// ---------------------------------------------------- Verifier edge cases

TEST(ServiceProviderTest, RejectsEnrollmentWithoutChallenge) {
  Deployment world(fast_config());
  core::EnrollComplete msg;
  msg.client_id = "stranger";
  const auto result = world.sp().complete_enrollment(msg);
  EXPECT_FALSE(result.accepted);
  EXPECT_EQ(result.reason, "no pending enrollment challenge");
  EXPECT_EQ(result.code, proto::RejectCode::kNoPendingEnrollment);
}

TEST(ServiceProviderTest, RejectsForgedCaCertificate) {
  Deployment world(fast_config());
  // A certificate signed by a rogue CA.
  tpm::PrivacyCa rogue(bytes_of("rogue-ca"), 768);
  const auto cert =
      rogue.certify("alice", world.platform().tpm().aik_public());

  const auto challenge =
      world.sp().begin_enrollment(core::EnrollBegin{"alice"});
  core::EnrollComplete msg;
  msg.client_id = "alice";
  msg.confirmation_pubkey = Bytes(10, 1);
  msg.quote = Bytes(10, 2);
  msg.aik_certificate = cert.serialize();
  (void)challenge;
  const auto result = world.sp().complete_enrollment(msg);
  EXPECT_FALSE(result.accepted);
  EXPECT_EQ(result.reason, "AIK certificate not signed by trusted CA");
}

TEST(ServiceProviderTest, RejectsQuoteFromTamperedPal) {
  // Full pipeline, but the quote comes from a session of a DIFFERENT PAL
  // image: PCR17 != golden.
  Deployment world(fast_config());
  auto& platform = world.platform();

  const auto challenge =
      world.sp().begin_enrollment(core::EnrollBegin{"alice"});

  // Run enrollment inside a look-alike PAL with a patched image.
  pal::PalDescriptor evil = core::make_trusted_path_pal();
  evil.image = pal::PalDescriptor::make_image(core::kPalName,
                                              core::kPalVersion, "patched");
  core::PalEnrollInput in;
  in.nonce = challenge.nonce;
  in.key_bits = 768;
  pal::SessionDriver driver(platform);
  auto session = driver.run(evil, in.marshal());
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session.value().status.ok());
  auto out = core::PalEnrollOutput::unmarshal(session.value().output);
  ASSERT_TRUE(out.ok());

  core::EnrollComplete msg;
  msg.client_id = "alice";
  msg.confirmation_pubkey = out.value().pubkey;
  msg.quote = out.value().quote;
  msg.aik_certificate =
      world.ca().certify("alice", platform.tpm().aik_public()).serialize();
  const auto result = world.sp().complete_enrollment(msg);
  EXPECT_FALSE(result.accepted);
  EXPECT_EQ(result.reason, "PCR17 does not match golden PAL measurement");
}

TEST(ServiceProviderTest, RejectsQuoteBoundToWrongNonce) {
  // Replay a quote produced under an older challenge.
  Deployment world(fast_config());
  auto& platform = world.platform();

  // Legit PAL run bound to nonce A...
  const Bytes stale_nonce(20, 0x77);
  core::PalEnrollInput in;
  in.nonce = stale_nonce;
  in.key_bits = 768;
  pal::SessionDriver driver(platform);
  auto session = driver.run(core::make_trusted_path_pal(), in.marshal());
  ASSERT_TRUE(session.ok());
  auto out = core::PalEnrollOutput::unmarshal(session.value().output);
  ASSERT_TRUE(out.ok());

  // ...submitted against a fresh challenge B.
  (void)world.sp().begin_enrollment(core::EnrollBegin{"alice"});
  core::EnrollComplete msg;
  msg.client_id = "alice";
  msg.confirmation_pubkey = out.value().pubkey;
  msg.quote = out.value().quote;
  msg.aik_certificate =
      world.ca().certify("alice", platform.tpm().aik_public()).serialize();
  const auto result = world.sp().complete_enrollment(msg);
  EXPECT_FALSE(result.accepted);
  EXPECT_EQ(result.reason, "quote verification failed");
}

TEST(ServiceProviderTest, TxChallengesAreOneShot) {
  Deployment world(fast_config());
  devices::HumanParams hp = perfect_human();
  pal::HumanAgent agent(devices::HumanModel(hp, SimRng(3)), "pay 5");
  world.client().set_user_agent(&agent);
  ASSERT_TRUE(world.client().enroll().ok());
  auto outcome = world.client().submit_transaction("pay 5", bytes_of("p"));
  ASSERT_TRUE(outcome.ok());
  ASSERT_TRUE(outcome.value().accepted);

  // Completing the same tx_id again must fail (challenge consumed).
  core::TxConfirm stale;
  stale.client_id = "alice";
  stale.tx_id = 1;
  stale.verdict = Verdict::kConfirmed;
  stale.signature = Bytes(96, 1);
  const auto result = world.sp().complete_transaction(stale);
  EXPECT_FALSE(result.accepted);
  EXPECT_EQ(result.reason, "unknown or already-settled transaction");
  EXPECT_EQ(result.code, proto::RejectCode::kUnknownTx);
}

TEST(ServiceProviderTest, RejectsClientMismatch) {
  Deployment world(fast_config());
  const auto challenge = world.sp().begin_transaction(
      core::TxSubmit{"alice", "pay 5", bytes_of("p")});
  core::TxConfirm msg;
  msg.client_id = "mallory";
  msg.tx_id = challenge.tx_id;
  msg.verdict = Verdict::kConfirmed;
  msg.signature = Bytes(96, 1);
  const auto result = world.sp().complete_transaction(msg);
  EXPECT_FALSE(result.accepted);
  EXPECT_EQ(result.reason, "client mismatch");
  EXPECT_EQ(result.code, proto::RejectCode::kClientMismatch);
}

TEST(ServiceProviderTest, RejectsUnenrolledClient) {
  Deployment world(fast_config());
  const auto challenge = world.sp().begin_transaction(
      core::TxSubmit{"nobody", "pay 5", bytes_of("p")});
  core::TxConfirm msg;
  msg.client_id = "nobody";
  msg.tx_id = challenge.tx_id;
  msg.verdict = Verdict::kConfirmed;
  msg.signature = Bytes(96, 1);
  const auto result = world.sp().complete_transaction(msg);
  EXPECT_FALSE(result.accepted);
  EXPECT_EQ(result.reason, "client not enrolled");
}

TEST(ServiceProviderTest, NonConfirmedVerdictsRejected) {
  Deployment world(fast_config());
  pal::HumanAgent agent(
      devices::HumanModel(perfect_human(), SimRng(3)), "x");
  world.client().set_user_agent(&agent);
  ASSERT_TRUE(world.client().enroll().ok());
  for (Verdict v : {Verdict::kRejected, Verdict::kTimeout}) {
    const auto challenge = world.sp().begin_transaction(
        core::TxSubmit{"alice", "pay 5", bytes_of("p")});
    core::TxConfirm msg;
    msg.client_id = "alice";
    msg.tx_id = challenge.tx_id;
    msg.verdict = v;
    const auto result = world.sp().complete_transaction(msg);
    EXPECT_FALSE(result.accepted);
  }
}

TEST(ServiceProviderTest, MalformedFramesAnsweredNotCrashed) {
  Deployment world(fast_config());
  (void)world.sp().handle_frame(Bytes{});
  (void)world.sp().handle_frame(Bytes{0xff, 0x01});
  (void)world.sp().handle_frame(Bytes{0x05});  // TxSubmit with no body
  (void)world.sp().handle_frame(Bytes{0x07, 0x01, 0x02});  // bad TxConfirm
  // Stats recorded a rejection for the malformed TxConfirm.
  EXPECT_GE(world.sp().stats().rejects(proto::RejectCode::kMalformedTxConfirm),
            1u);
}

TEST(ServiceProviderTest, StatsTrackRejectCodes) {
  Deployment world(fast_config());
  core::EnrollComplete msg;
  msg.client_id = "ghost";
  (void)world.sp().complete_enrollment(msg);
  EXPECT_EQ(
      world.sp().stats().rejects(proto::RejectCode::kNoPendingEnrollment),
      1u);
  EXPECT_EQ(world.sp().stats().enroll_rejected, 1u);
  EXPECT_EQ(world.sp().stats().total_rejects(), 1u);
}

TEST(ServiceProviderTest, StatsResetGivesCleanPhaseMeasurements) {
  Deployment world(fast_config());
  core::EnrollComplete msg;
  msg.client_id = "ghost";
  (void)world.sp().complete_enrollment(msg);
  core::TxConfirm confirm;
  confirm.client_id = "ghost";
  confirm.tx_id = 1234;
  (void)world.sp().complete_transaction(confirm);
  ASSERT_EQ(world.sp().stats().enroll_rejected, 1u);
  ASSERT_EQ(world.sp().stats().tx_rejected, 1u);

  world.sp().reset_stats();
  const SpStats stats = world.sp().stats();
  EXPECT_EQ(stats.enroll_rejected, 0u);
  EXPECT_EQ(stats.tx_rejected, 0u);
  EXPECT_EQ(stats.total_rejects(), 0u);

  // The struct itself resets too (for snapshot copies held by benches).
  SpStats copy = world.sp().stats_snapshot();
  copy.tx_accepted = 7;
  copy.reset();
  EXPECT_EQ(copy.tx_accepted, 0u);
  EXPECT_EQ(copy.total_rejects(), 0u);

  // And the latency histograms are registry-backed alongside.
  (void)world.sp().complete_transaction(confirm);
  EXPECT_EQ(world.sp().stats().tx_rejected, 1u);
}

// ------------------------------------------------------ Session lifecycle

TEST(ServiceProviderTest, SessionExpiresOnDeploymentClock) {
  // The deployment wires the SP's session deadlines to the platform's
  // SimClock: advancing simulated time past the TTL expires the
  // half-open session, and the completion gets the typed expiry reject.
  DeploymentConfig cfg = fast_config();
  cfg.session_ttl = SimDuration::seconds(30);
  Deployment world(cfg);

  const auto challenge = world.sp().begin_transaction(
      core::TxSubmit{"alice", "pay 5", bytes_of("p")});
  EXPECT_EQ(world.sp().session_table_occupancy(), 1u);

  world.clock().advance(SimDuration::seconds(31));
  core::TxConfirm msg;
  msg.client_id = "alice";
  msg.tx_id = challenge.tx_id;
  msg.verdict = Verdict::kConfirmed;
  msg.signature = Bytes(96, 1);
  const auto result = world.sp().complete_transaction(msg);
  EXPECT_FALSE(result.accepted);
  EXPECT_EQ(result.reason, "session expired");
  EXPECT_EQ(result.code, proto::RejectCode::kSessionExpired);
  EXPECT_EQ(world.sp().session_table_occupancy(), 0u);
  EXPECT_EQ(world.sp().stats().sessions_expired, 1u);
}

TEST(ServiceProviderTest, EnrollSessionsBoundedPerClient) {
  // One client re-sending EnrollBegin occupies exactly one slot, however
  // often it begins.
  Deployment world(fast_config());
  for (int i = 0; i < 100; ++i) {
    (void)world.sp().begin_enrollment(core::EnrollBegin{"alice"});
  }
  EXPECT_EQ(world.sp().session_table_occupancy(), 1u);
  EXPECT_EQ(world.sp().stats().sessions_evicted, 0u);
}

TEST(ServiceProviderTest, TxSessionsEvictOldestUnderPressure) {
  DeploymentConfig cfg = fast_config();
  cfg.tx_session_capacity = 8;
  Deployment world(cfg);
  const std::size_t flat = world.sp().session_table_memory_bytes();
  core::TxChallenge first;
  for (int i = 0; i < 100; ++i) {
    const auto ch = world.sp().begin_transaction(
        core::TxSubmit{"alice", "pay " + std::to_string(i), bytes_of("p")});
    if (i == 0) first = ch;
  }
  EXPECT_EQ(world.sp().session_table_occupancy(), 8u);
  EXPECT_EQ(world.sp().stats().sessions_evicted, 92u);
  EXPECT_EQ(world.sp().session_table_memory_bytes(), flat);

  // The evicted (oldest) challenge is gone; completing it gets the
  // generic no-session reject, not a stale acceptance.
  core::TxConfirm msg;
  msg.client_id = "alice";
  msg.tx_id = first.tx_id;
  msg.verdict = Verdict::kConfirmed;
  msg.signature = Bytes(96, 1);
  const auto result = world.sp().complete_transaction(msg);
  EXPECT_FALSE(result.accepted);
  EXPECT_EQ(result.code, proto::RejectCode::kUnknownTx);
}

TEST(ServiceProviderTest, ResultsCarryTypedCodeOnTheWire) {
  // The u8 code survives serialize/deserialize next to the legacy reason.
  Deployment world(fast_config());
  core::TxConfirm confirm;
  confirm.client_id = "ghost";
  confirm.tx_id = 99;
  const auto result = world.sp().complete_transaction(confirm);
  const auto reparsed =
      core::TxResult::deserialize(result.serialize());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed.value().code, proto::RejectCode::kUnknownTx);
  EXPECT_EQ(reparsed.value().reason, result.reason);
}

}  // namespace
}  // namespace tp::sp
