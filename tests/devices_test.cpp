// Device-substrate tests: display/keyboard exclusivity (the trusted-path
// property) and the human model's behaviour distribution.
#include <gtest/gtest.h>

#include "devices/display.h"
#include "devices/human.h"
#include "devices/keyboard.h"

namespace tp::devices {
namespace {

DisplayContent screen(std::initializer_list<std::string> lines) {
  return DisplayContent{std::vector<std::string>(lines)};
}

// ---------------------------------------------------------------- Display

TEST(Display, HostDrawsFreelyOutsideSession) {
  Display d;
  EXPECT_TRUE(d.render(DeviceAccess::kHost, screen({"hello"})).ok());
  EXPECT_EQ(d.content().lines, std::vector<std::string>{"hello"});
}

TEST(Display, HostBlockedDuringSession) {
  Display d;
  d.acquire_exclusive();
  ASSERT_TRUE(d.render(DeviceAccess::kPal, screen({"TX: pay 10"})).ok());
  const auto before = d.content();
  EXPECT_EQ(d.render(DeviceAccess::kHost, screen({"TX: pay 9999"})).code(),
            Err::kIsolationViolation);
  EXPECT_EQ(d.content(), before);  // spoof did not land
  EXPECT_EQ(d.blocked_host_renders(), 1u);
  d.release_exclusive();
  EXPECT_TRUE(d.render(DeviceAccess::kHost, screen({"free again"})).ok());
}

TEST(Display, SpoofBeforeSessionSucceeds) {
  // The "uni-directional" caveat: before the session, malware CAN draw a
  // fake screen. The display does not prevent it -- the protocol does not
  // rely on it.
  Display d;
  EXPECT_TRUE(
      d.render(DeviceAccess::kHost, screen({"TX: fake prompt"})).ok());
  EXPECT_EQ(d.blocked_host_renders(), 0u);
}

TEST(DisplayContent, FindField) {
  const auto c = screen({"title", "TX: pay 10 EUR to bob", "CODE: x7k2"});
  EXPECT_EQ(c.find_field("TX: "), "pay 10 EUR to bob");
  EXPECT_EQ(c.find_field("CODE: "), "x7k2");
  EXPECT_EQ(c.find_field("MISSING: "), "");
}

// --------------------------------------------------------------- Keyboard

TEST(Keyboard, PhysicalKeysAlwaysDelivered) {
  Keyboard kb;
  kb.press_line(KeySource::kPhysical, "abc");
  EXPECT_EQ(kb.read_line(), "abc");
  EXPECT_TRUE(kb.empty());
}

TEST(Keyboard, InjectedKeysDeliveredOutsideSession) {
  // Outside a session malware may synthesize input (it owns the OS).
  Keyboard kb;
  kb.press_line(KeySource::kInjected, "evil");
  EXPECT_EQ(kb.read_line(), "evil");
}

TEST(Keyboard, InjectedKeysDroppedDuringSession) {
  Keyboard kb;
  kb.acquire_exclusive();
  kb.press_line(KeySource::kInjected, "x7k2");  // malware types the code
  kb.press_line(KeySource::kPhysical, "real");
  EXPECT_EQ(kb.read_line(), "real");
  EXPECT_EQ(kb.blocked_injections(), 5u);  // "x7k2" + newline
}

TEST(Keyboard, InterleavedSourcesFilterCorrectly) {
  Keyboard kb;
  kb.acquire_exclusive();
  kb.press(KeySource::kPhysical, 'a');
  kb.press(KeySource::kInjected, 'Z');
  kb.press(KeySource::kPhysical, 'b');
  kb.press(KeySource::kPhysical, '\n');
  EXPECT_EQ(kb.read_line(), "ab");
}

TEST(Keyboard, ReleaseRestoresInjection) {
  Keyboard kb;
  kb.acquire_exclusive();
  kb.release_exclusive();
  kb.press_line(KeySource::kInjected, "ok");
  EXPECT_EQ(kb.read_line(), "ok");
}

TEST(Keyboard, ClearDiscardsQueue) {
  Keyboard kb;
  kb.press_line(KeySource::kPhysical, "stale");
  kb.clear();
  EXPECT_TRUE(kb.empty());
  EXPECT_EQ(kb.read_line(), "");
}

TEST(Keyboard, PollReportsSource) {
  Keyboard kb;
  kb.press(KeySource::kPhysical, 'p');
  const auto ev = kb.poll();
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->ch, 'p');
  EXPECT_EQ(ev->source, KeySource::kPhysical);
  EXPECT_FALSE(kb.poll().has_value());
}

// ------------------------------------------------------------ Human model

class HumanTest : public ::testing::Test {
 protected:
  HumanModel make(HumanParams p, std::uint64_t seed = 1) {
    return HumanModel(p, SimRng(seed));
  }
};

TEST_F(HumanTest, TypesDisplayedCodeWhenTransactionMatches) {
  HumanParams p;
  p.typo_prob = 0.0;
  HumanModel human = make(p);
  Keyboard kb;
  const auto dur = human.respond_to_confirmation(
      DisplayContent{{"TX: pay 10 EUR to bob", "CODE: k3m9"}},
      "pay 10 EUR to bob", kb);
  EXPECT_EQ(kb.read_line(), "k3m9");
  EXPECT_GT(dur.ns, 0);
}

TEST_F(HumanTest, AttentiveUserRejectsSubstitutedTransaction) {
  HumanParams p;
  p.attention = 1.0;
  HumanModel human = make(p);
  Keyboard kb;
  (void)human.respond_to_confirmation(
      DisplayContent{{"TX: pay 9999 EUR to mallory", "CODE: k3m9"}},
      "pay 10 EUR to bob", kb);
  EXPECT_EQ(kb.read_line(), kRejectLine);
}

TEST_F(HumanTest, CarelessUserConfirmsSubstitutedTransaction) {
  // attention = 0: the user never compares. This is the residual risk the
  // paper accepts for the user-side direction.
  HumanParams p;
  p.attention = 0.0;
  p.typo_prob = 0.0;
  HumanModel human = make(p);
  Keyboard kb;
  (void)human.respond_to_confirmation(
      DisplayContent{{"TX: pay 9999 EUR to mallory", "CODE: k3m9"}},
      "pay 10 EUR to bob", kb);
  EXPECT_EQ(kb.read_line(), "k3m9");
}

TEST_F(HumanTest, RejectsWhenNoCodeShown) {
  HumanModel human = make(HumanParams{});
  Keyboard kb;
  (void)human.respond_to_confirmation(DisplayContent{{"TX: pay 10"}},
                                      "pay 10", kb);
  EXPECT_EQ(kb.read_line(), kRejectLine);
}

TEST_F(HumanTest, TypoRateObserved) {
  HumanParams p;
  p.typo_prob = 0.2;
  HumanModel human = make(p, 7);
  int wrong = 0;
  const int kTrials = 400;
  for (int i = 0; i < kTrials; ++i) {
    Keyboard kb;
    (void)human.respond_to_confirmation(
        DisplayContent{{"TX: t", "CODE: abcdef"}}, "t", kb);
    if (kb.read_line() != "abcdef") ++wrong;
  }
  // P(at least one typo in 6 chars) = 1 - 0.8^6 = 0.738.
  EXPECT_NEAR(wrong / static_cast<double>(kTrials), 0.738, 0.08);
}

TEST_F(HumanTest, CaptchaSolveRate) {
  HumanParams p;
  p.captcha_solve_prob = 0.75;
  HumanModel human = make(p, 3);
  int solved = 0;
  for (int i = 0; i < 2000; ++i) {
    if (human.solves_captcha()) ++solved;
  }
  EXPECT_NEAR(solved / 2000.0, 0.75, 0.04);
}

TEST_F(HumanTest, TimesArePositiveAndScale) {
  HumanModel human = make(HumanParams{}, 5);
  EXPECT_GT(human.captcha_time().ns, 0);
  EXPECT_GT(human.typing_time(10).ns, human.typing_time(2).ns);
  EXPECT_EQ(human.typing_time(0).ns, 0);
}

}  // namespace
}  // namespace tp::devices
