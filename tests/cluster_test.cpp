// Cluster suite (`ctest -L cluster`): consistent-hash routing and the
// sharded verifier cluster's live-handoff guarantees.
//
// Ring invariants: placement is deterministic across processes and
// construction orders (routing is a contract, not an in-memory
// accident), keys spread near-uniformly, and a resize remaps only the
// ~K/N keys the ring assigns to the joining shard (or away from the
// leaving one) -- never a key between two surviving shards.
//
// Cluster invariants: a client mid-exchange survives its shard changing.
// A challenge issued by the old owner is honoured by the new one, a
// settled transaction's retransmit replays byte-identically on the new
// owner (no double-execution), transaction ids stay globally unique
// across shards, and frames submitted during a rebalance are parked and
// re-routed, never dropped. The chaos member of the suite (also under
// `ctest -L chaos`) drives a full fleet at a ~26% fault rate through a
// 4-shard cluster with a mid-run shard join.
#include "cluster/verifier_cluster.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cluster/consistent_hash.h"
#include "core/messages.h"
#include "pal/human_agent.h"
#include "sp/fleet.h"

namespace tp {
namespace {

using cluster::ClusterConfig;
using cluster::ConsistentHashRouter;
using cluster::VerifierCluster;
using core::MsgType;
using core::TxChallenge;
using core::TxConfirm;
using core::TxResult;
using core::TxSubmit;
using core::Verdict;

// ------------------------------------------------------------------ ring

TEST(ConsistentHash, SpreadsKeysNearUniformly) {
  ConsistentHashRouter router(64);
  for (std::uint32_t s = 0; s < 4; ++s) router.add_shard(s);
  std::vector<std::size_t> hits(4, 0);
  const std::size_t kKeys = 100000;
  for (std::size_t i = 0; i < kKeys; ++i) {
    ++hits[router.shard_for("uniformity-client-" + std::to_string(i))];
  }
  const double mean = static_cast<double>(kKeys) / 4.0;
  for (std::uint32_t s = 0; s < 4; ++s) {
    EXPECT_GT(hits[s], mean * 0.65) << "shard " << s << " starved";
    EXPECT_LT(hits[s], mean * 1.35) << "shard " << s << " overloaded";
  }
}

TEST(ConsistentHash, JoinRemapsOnlyTowardTheNewShardWithinBound) {
  ConsistentHashRouter before(64);
  for (std::uint32_t s = 0; s < 4; ++s) before.add_shard(s);
  ConsistentHashRouter after = before;
  after.add_shard(4);

  const std::size_t kKeys = 100000;
  std::size_t moved = 0;
  for (std::size_t i = 0; i < kKeys; ++i) {
    const std::string id = "remap-client-" + std::to_string(i);
    const std::uint32_t old_owner = before.shard_for(id);
    const std::uint32_t new_owner = after.shard_for(id);
    if (old_owner != new_owner) {
      ++moved;
      // Consistent hashing's defining property: a join only pulls keys
      // to the joining shard, never shuffles them between survivors.
      EXPECT_EQ(new_owner, 4u) << id;
    }
  }
  // Expected move fraction is K/N = 1/5; allow 50% slack for vnode
  // placement variance.
  EXPECT_GT(moved, 0u);
  EXPECT_LT(moved, kKeys / 5 + kKeys / 10);
}

TEST(ConsistentHash, LeaveRemapsOnlyTheLeavingShardsKeys) {
  ConsistentHashRouter before(64);
  for (std::uint32_t s = 0; s < 4; ++s) before.add_shard(s);
  ConsistentHashRouter after = before;
  after.remove_shard(2);

  for (std::size_t i = 0; i < 20000; ++i) {
    const std::string id = "leave-client-" + std::to_string(i);
    const std::uint32_t old_owner = before.shard_for(id);
    const std::uint32_t new_owner = after.shard_for(id);
    if (old_owner != 2) {
      EXPECT_EQ(new_owner, old_owner) << id << " moved between survivors";
    } else {
      EXPECT_NE(new_owner, 2u) << id;
    }
  }
}

TEST(ConsistentHash, PlacementIsDeterministicAcrossInstancesAndAddOrder) {
  // Routing must survive a process restart: two routers built
  // independently -- in different add orders -- agree on every key.
  ConsistentHashRouter forward(64);
  for (std::uint32_t s = 0; s < 4; ++s) forward.add_shard(s);
  ConsistentHashRouter reverse(64);
  for (std::int32_t s = 3; s >= 0; --s) {
    reverse.add_shard(static_cast<std::uint32_t>(s));
  }
  for (std::size_t i = 0; i < 1000; ++i) {
    const std::string id = "restart-client-" + std::to_string(i);
    EXPECT_EQ(forward.shard_for(id), reverse.shard_for(id)) << id;
  }
  // Golden placements: these literals pin the on-the-wire routing
  // contract -- a hash or fold change that silently re-homes every
  // client fails here, not in production.
  EXPECT_EQ(forward.shard_for("client-0"), 2u);
  EXPECT_EQ(forward.shard_for("client-1"), 3u);
  EXPECT_EQ(forward.shard_for("alice"), 3u);
  EXPECT_EQ(forward.shard_for("bob"), 0u);
  EXPECT_EQ(forward.shard_for("f11-client-42"), 1u);
}

TEST(ConsistentHash, ReAddingAShardRestoresItsPlacement) {
  ConsistentHashRouter router(64);
  for (std::uint32_t s = 0; s < 4; ++s) router.add_shard(s);
  std::vector<std::uint32_t> owners;
  for (std::size_t i = 0; i < 500; ++i) {
    owners.push_back(router.shard_for("cycle-client-" + std::to_string(i)));
  }
  router.remove_shard(1);
  router.add_shard(1);
  for (std::size_t i = 0; i < 500; ++i) {
    EXPECT_EQ(router.shard_for("cycle-client-" + std::to_string(i)),
              owners[i]);
  }
}

// --------------------------------------------------------------- cluster

/// Raw-frame cluster: trusted-path checks off, so tests can drive
/// TxSubmit/TxConfirm exchanges without enrolling simulated platforms.
ClusterConfig raw_cluster_config(std::size_t shards) {
  ClusterConfig cc;
  cc.num_shards = shards;
  cc.svc.num_workers = 1;  // overridden per member anyway
  cc.svc.queue_depth = 256;
  cc.svc.sp.require_trusted_path = false;
  return cc;
}

Bytes submit_frame(const std::string& client, const std::string& summary) {
  TxSubmit submit;
  submit.client_id = client;
  submit.summary = summary;
  submit.payload = bytes_of("payload:" + summary);
  return core::envelope(MsgType::kTxSubmit, submit.serialize());
}

Bytes confirm_frame(const std::string& client, std::uint64_t tx_id) {
  TxConfirm confirm;
  confirm.client_id = client;
  confirm.tx_id = tx_id;
  confirm.verdict = Verdict::kConfirmed;
  return core::envelope(MsgType::kTxConfirm, confirm.serialize());
}

std::uint64_t challenge_tx_id(const svc::SvcResponse& response) {
  EXPECT_EQ(response.status, svc::SvcStatus::kOk);
  auto opened = core::open_envelope(response.frame);
  EXPECT_TRUE(opened.ok());
  auto challenge = TxChallenge::deserialize(opened.value().second);
  EXPECT_TRUE(challenge.ok());
  return challenge.value().tx_id;
}

bool result_accepted(const svc::SvcResponse& response) {
  if (response.status != svc::SvcStatus::kOk) return false;
  auto opened = core::open_envelope(response.frame);
  if (!opened.ok()) return false;
  auto result = TxResult::deserialize(opened.value().second);
  return result.ok() && result.value().accepted;
}

TEST(VerifierCluster, ConfigValidation) {
  ClusterConfig zero;
  zero.num_shards = 0;
  EXPECT_THROW(VerifierCluster{zero}, std::invalid_argument);

  VerifierCluster cluster(raw_cluster_config(1));
  EXPECT_THROW(cluster.remove_shard(0), std::invalid_argument);  // last
  EXPECT_THROW(cluster.remove_shard(7), std::invalid_argument);  // unknown
}

TEST(VerifierCluster, TransactionIdsAreGloballyUniqueAcrossShards) {
  VerifierCluster cluster(raw_cluster_config(4));
  cluster.start();
  std::set<std::uint64_t> tx_ids;
  for (int i = 0; i < 64; ++i) {
    const std::string id = "txid-client-" + std::to_string(i);
    const auto tx_id =
        challenge_tx_id(cluster.call(id, submit_frame(id, "pay 1")));
    EXPECT_TRUE(tx_ids.insert(tx_id).second)
        << "tx id " << tx_id << " issued twice";
  }
  // Distinct per-shard id spaces, not luck: ids from different shards
  // differ in their high bits.
  std::set<std::uint64_t> bases;
  for (const std::uint64_t tx_id : tx_ids) bases.insert(tx_id >> 40);
  EXPECT_EQ(bases.size(), 4u);
  cluster.drain();
}

TEST(VerifierCluster, HalfOpenExchangeSurvivesShardJoin) {
  // Challenge issued by the old owner, confirmation delivered to the new
  // one: the moved session must complete there, exactly once.
  VerifierCluster cluster(raw_cluster_config(4));
  cluster.start();

  const int kClients = 32;
  std::vector<std::string> ids;
  std::vector<std::uint64_t> tx_ids;
  std::vector<std::uint32_t> old_owner;
  for (int i = 0; i < kClients; ++i) {
    ids.push_back("cluster-client-" + std::to_string(i));
    tx_ids.push_back(
        challenge_tx_id(cluster.call(ids[i], submit_frame(ids[i], "pay"))));
    old_owner.push_back(cluster.shard_for(ids[i]));
  }

  const std::uint32_t joined = cluster.add_shard();
  // The probe'd ring moves 7 of these 32 ids to shard 4; handoff must
  // have carried their live sessions.
  EXPECT_GT(cluster.handoff_sessions(), 0u);
  bool some_moved = false;
  for (int i = 0; i < kClients; ++i) {
    if (cluster.shard_for(ids[i]) != old_owner[i]) {
      some_moved = true;
      EXPECT_EQ(cluster.shard_for(ids[i]), joined);
    }
  }
  ASSERT_TRUE(some_moved);

  for (int i = 0; i < kClients; ++i) {
    EXPECT_TRUE(
        result_accepted(cluster.call(ids[i], confirm_frame(ids[i], tx_ids[i]))))
        << ids[i];
  }
  EXPECT_EQ(cluster.stats().tx_accepted,
            static_cast<std::uint64_t>(kClients));
  cluster.drain();
}

TEST(VerifierCluster, SettledExchangeReplaysByteIdenticallyAfterJoin) {
  // No double-confirm across a failover: a retransmit that lands on the
  // NEW owner of a settled session must replay the cached response
  // byte-for-byte, not re-execute.
  VerifierCluster cluster(raw_cluster_config(4));
  cluster.start();

  const int kClients = 32;
  std::vector<std::string> ids;
  std::vector<Bytes> confirms;
  std::vector<Bytes> responses;
  std::vector<std::uint32_t> old_owner;
  for (int i = 0; i < kClients; ++i) {
    ids.push_back("cluster-client-" + std::to_string(i));
    const auto tx_id =
        challenge_tx_id(cluster.call(ids[i], submit_frame(ids[i], "pay")));
    confirms.push_back(confirm_frame(ids[i], tx_id));
    const auto response = cluster.call(ids[i], confirms[i]);
    EXPECT_TRUE(result_accepted(response));
    responses.push_back(response.frame);
    old_owner.push_back(cluster.shard_for(ids[i]));
  }
  ASSERT_EQ(cluster.stats().tx_accepted,
            static_cast<std::uint64_t>(kClients));

  cluster.add_shard();
  bool some_moved = false;
  for (int i = 0; i < kClients; ++i) {
    some_moved |= cluster.shard_for(ids[i]) != old_owner[i];
    const auto replay = cluster.call(ids[i], confirms[i]);
    EXPECT_EQ(replay.status, svc::SvcStatus::kOk);
    EXPECT_EQ(replay.frame, responses[i])
        << ids[i] << ": replay not byte-identical";
  }
  ASSERT_TRUE(some_moved);
  // Replayed, not re-executed.
  EXPECT_EQ(cluster.stats().tx_accepted,
            static_cast<std::uint64_t>(kClients));
  cluster.drain();
}

TEST(VerifierCluster, SubmitsDuringRebalanceAreParkedNeverDropped) {
  VerifierCluster cluster(raw_cluster_config(2));
  cluster.start();

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> sent{0}, served{0};
  std::vector<std::thread> producers;
  for (int t = 0; t < 3; ++t) {
    producers.emplace_back([&, t] {
      for (int i = 0; !stop.load(std::memory_order_relaxed); ++i) {
        const std::string id =
            "park-client-" + std::to_string(t) + "-" + std::to_string(i);
        sent.fetch_add(1, std::memory_order_relaxed);
        const auto response = cluster.call(id, submit_frame(id, "pay"));
        // Every future resolves with a served response: a parked frame
        // is re-routed after the resize, never dropped or failed.
        EXPECT_EQ(response.status, svc::SvcStatus::kOk);
        served.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::uint32_t added = 0;
  for (int resize = 0; resize < 3; ++resize) {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    added = cluster.add_shard();
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  cluster.remove_shard(added);
  stop.store(true);
  for (auto& p : producers) p.join();

  EXPECT_EQ(sent.load(), served.load());
  EXPECT_GT(sent.load(), 0u);
  EXPECT_EQ(cluster.num_shards(), 4u);
  cluster.drain();
}

TEST(VerifierCluster, PublishesPerShardGaugesAndRouterCounters) {
  VerifierCluster cluster(raw_cluster_config(2));
  cluster.start();
  for (int i = 0; i < 16; ++i) {
    const std::string id = "gauge-client-" + std::to_string(i);
    const auto tx_id =
        challenge_tx_id(cluster.call(id, submit_frame(id, "pay")));
    EXPECT_TRUE(result_accepted(cluster.call(id, confirm_frame(id, tx_id))));
  }
  cluster.add_shard();
  cluster.drain();
  cluster.publish_gauges();

  const std::string json = cluster.metrics().to_json();
  for (const char* name :
       {"cluster.shard.0.accepts", "cluster.shard.0.memory_bytes",
        "cluster.shard.1.queue_depth", "cluster.shard.2.sessions",
        "cluster.remapped_keys", "cluster.handoff_sessions",
        "cluster.rebalances"}) {
    EXPECT_NE(json.find(name), std::string::npos) << name;
  }
  // Every shard's bounded-table footprint is nonzero and identical (the
  // tables are sized by config, not population -- the flat-memory claim).
  std::int64_t first = -1;
  for (const auto& g : cluster.metrics().gauges()) {
    if (g.name.find(".memory_bytes") == std::string::npos) continue;
    EXPECT_GT(g.value, 0);
    if (first < 0) first = g.value;
    EXPECT_EQ(g.value, first);
  }
  cluster.drain();
}

// ----------------------------------------------------------------- chaos

TEST(ClusterChaos, FleetConfirmsExactlyOnceThroughRebalancingCluster) {
  // The PR 5 chaos exchange pointed at a 4-shard cluster: every frame of
  // a real fleet (TPM quotes, PAL sessions, RSA confirmation signatures)
  // crosses a link dropping/duplicating/reordering ~26% of messages in
  // each direction, while a fifth shard joins mid-run. The client-side
  // and cluster-side accept counts must agree exactly -- retransmits and
  // the handoff may never double-execute a payment.
  sp::FleetConfig fleet_config;
  fleet_config.num_clients = 8;
  fleet_config.seed = bytes_of("cluster-chaos");
  fleet_config.tpm_key_bits = 768;
  fleet_config.client_key_bits = 768;
  // Pinned seed (see chaos_test.cpp): the all-accepted assertion depends
  // on the sampled fault sequence.
  net::FaultProfile profile;
  profile.drop_prob = 0.13;
  profile.dup_prob = 0.08;
  profile.reorder_prob = 0.05;
  fleet_config.net.fault = net::FaultPlan::symmetric(profile, 0xc1a05ull);
  fleet_config.client_retry.max_attempts = 16;
  fleet_config.client_retry.backoff_base = SimDuration::millis(50);
  sp::Fleet fleet(fleet_config);

  ClusterConfig cc;
  cc.num_shards = 4;
  cc.svc.queue_depth = 64;
  cc.svc.default_deadline = std::chrono::milliseconds(2000);
  cc.svc.sp = fleet.sp_config();
  VerifierCluster cluster(cc);
  cluster.start();
  fleet.route_frames_to([&cluster](const std::string& id, BytesView frame) {
    return cluster.call(id, frame).frame;
  });

  std::vector<std::unique_ptr<pal::HumanAgent>> users;
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    auto agent = std::make_unique<pal::HumanAgent>(
        devices::HumanModel(devices::HumanParams{}, SimRng(9000 + i)), "");
    fleet.client(i).set_user_agent(agent.get());
    users.push_back(std::move(agent));
  }
  ASSERT_EQ(fleet.enroll_all(), fleet.size());

  std::uint64_t client_accepts = 0;
  std::uint64_t faults = 0;
  for (std::size_t round = 0; round < 3; ++round) {
    for (std::size_t i = 0; i < fleet.size(); ++i) {
      const std::string summary =
          "pay " + std::to_string(round) + " by " + fleet.client_id(i);
      users[i]->set_intended_summary(summary);
      auto outcome = fleet.client(i).submit_transaction(
          summary, bytes_of("order " + std::to_string(round)));
      ASSERT_TRUE(outcome.ok())
          << fleet.client_id(i) << ": " << outcome.error().message;
      if (outcome.value().accepted) ++client_accepts;
    }
    if (round == 0) {
      // Live resize mid-run, with enrolled clients and replay/dedup
      // state in flight.
      cluster.add_shard();
      EXPECT_GT(cluster.remapped_keys(), 0u);
    }
  }
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    faults += fleet.link(i).faults()->injected_total();
    EXPECT_EQ(fleet.client(i).exchange_give_ups(), 0u) << fleet.client_id(i);
  }
  EXPECT_GT(faults, 0u);
  EXPECT_EQ(client_accepts, fleet.size() * 3);

  // Zero double-execution: what the clients counted is exactly what the
  // cluster executed, retransmits and handoff included.
  EXPECT_EQ(cluster.stats().tx_accepted, client_accepts);
  cluster.drain();
}

}  // namespace
}  // namespace tp
