// Tests for the second batch of extensions: the multi-client fleet, the
// spending-limit PAL (stateful, rollback-protected), and the
// quote-per-transaction design alternative.
#include <gtest/gtest.h>

#include "core/trusted_path_pal.h"
#include "pal/human_agent.h"
#include "pal/session.h"
#include "sp/deployment.h"
#include "sp/fleet.h"

namespace tp {
namespace {

using core::Verdict;

devices::HumanParams perfect_human() {
  devices::HumanParams p;
  p.typo_prob = 0.0;
  p.attention = 1.0;
  return p;
}

// ------------------------------------------------------------------ Fleet

TEST(FleetTest, MixedFleetEnrollsAgainstOneSp) {
  sp::FleetConfig cfg;
  cfg.num_clients = 6;
  cfg.seed = bytes_of("fleet-test");
  cfg.chip_mix = {"Infineon SLB9635", "Broadcom BCM5752"};
  cfg.technology_mix = {drtm::DrtmTechnology::kAmdSkinit,
                        drtm::DrtmTechnology::kIntelTxt};
  sp::Fleet fleet(cfg);
  ASSERT_EQ(fleet.size(), 6u);

  // Every member needs a human for the (non-interactive) enrollment? No:
  // ENROLL has no prompt; enroll_all works unattended.
  EXPECT_EQ(fleet.enroll_all(), 6u);
  EXPECT_EQ(fleet.sp().stats().enrolled, 6u);
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    EXPECT_TRUE(fleet.sp().is_enrolled(fleet.client_id(i)));
  }
}

TEST(FleetTest, MembersConfirmIndependently) {
  sp::FleetConfig cfg;
  cfg.num_clients = 3;
  cfg.seed = bytes_of("fleet-test-2");
  sp::Fleet fleet(cfg);
  ASSERT_EQ(fleet.enroll_all(), 3u);

  for (std::size_t i = 0; i < fleet.size(); ++i) {
    pal::HumanAgent agent(
        devices::HumanModel(perfect_human(), SimRng(100 + i)),
        "pay " + std::to_string(i));
    fleet.client(i).set_user_agent(&agent);
    auto outcome =
        fleet.client(i).submit_transaction("pay " + std::to_string(i), {});
    ASSERT_TRUE(outcome.ok());
    EXPECT_TRUE(outcome.value().accepted) << "client " << i;
  }
  EXPECT_EQ(fleet.sp().stats().tx_accepted, 3u);
}

TEST(FleetTest, OneMembersKeyUselessToAnother) {
  sp::FleetConfig cfg;
  cfg.num_clients = 2;
  cfg.seed = bytes_of("fleet-test-3");
  sp::Fleet fleet(cfg);
  ASSERT_EQ(fleet.enroll_all(), 2u);

  // Client 1 steals client 0's sealed key and tries to confirm with it
  // on its own machine: the blob belongs to a different TPM.
  pal::HumanAgent agent(devices::HumanModel(perfect_human(), SimRng(9)),
                        "theft");
  core::TxSubmit submit{fleet.client_id(1), "theft", bytes_of("p")};
  const auto challenge = fleet.sp().begin_transaction(submit);
  core::PalConfirmInput in;
  in.tx_summary = "theft";
  in.tx_digest = submit.digest();
  in.nonce = challenge.nonce;
  in.sealed_key = fleet.client(0).sealed_key_blob();  // stolen
  pal::SessionDriver driver(fleet.platform(1));
  driver.set_user_agent(&agent);
  auto session = driver.run(core::make_trusted_path_pal(), in.marshal());
  ASSERT_TRUE(session.ok());
  EXPECT_EQ(session.value().status.code(), Err::kAuthFail);
}

// --------------------------------------------------------- Spending limit

class SpendingLimitTest : public ::testing::Test {
 protected:
  SpendingLimitTest()
      : world_(make_config()),
        agent_(devices::HumanModel(perfect_human(), SimRng(3)), "") {
    world_.client().set_user_agent(&agent_);
    EXPECT_TRUE(world_.client().enroll().ok());
  }

  static sp::DeploymentConfig make_config() {
    sp::DeploymentConfig cfg;
    cfg.client_id = "limited";
    cfg.seed = bytes_of("limit-test");
    cfg.tpm_key_bits = 768;
    cfg.client_key_bits = 768;
    return cfg;
  }

  Result<core::TrustedPathClient::LimitedOutcome> spend(
      std::uint64_t amount_cents, std::uint64_t limit_cents = 10000) {
    const std::string summary =
        "pay " + std::to_string(amount_cents) + " cents";
    agent_.set_intended_summary(summary);
    return world_.client().submit_limited_transaction(
        summary, bytes_of("p"), amount_cents, limit_cents);
  }

  sp::Deployment world_;
  pal::HumanAgent agent_;
};

TEST_F(SpendingLimitTest, AccumulatesAndEnforces) {
  auto first = spend(4000);
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(first.value().accepted);
  EXPECT_EQ(first.value().spent_cents, 4000u);

  auto second = spend(4000);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.value().accepted);
  EXPECT_EQ(second.value().spent_cents, 8000u);

  // 8000 + 4000 > 10000: the PAL refuses BEFORE asking the user.
  auto third = spend(4000);
  ASSERT_TRUE(third.ok());
  EXPECT_FALSE(third.value().accepted);
  EXPECT_TRUE(third.value().limit_exceeded);
  EXPECT_EQ(third.value().verdict, Verdict::kRejected);

  // Small amounts still fit under the cap.
  auto fourth = spend(2000);
  ASSERT_TRUE(fourth.ok());
  EXPECT_TRUE(fourth.value().accepted);
  EXPECT_EQ(fourth.value().spent_cents, 10000u);
}

TEST_F(SpendingLimitTest, MalwareCannotRaiseTheLimit) {
  ASSERT_TRUE(spend(9000, 10000).value().accepted);
  // Malware rewrites the client config to a one-million limit; the PAL
  // uses the SEALED limit and still blocks.
  auto attempt = spend(5000, 100000000);
  ASSERT_TRUE(attempt.ok());
  EXPECT_TRUE(attempt.value().limit_exceeded);
  EXPECT_FALSE(attempt.value().accepted);
}

TEST_F(SpendingLimitTest, RollbackAttackDetected) {
  ASSERT_TRUE(spend(3000).value().accepted);
  const Bytes old_state = world_.client().spending_state_blob();
  ASSERT_TRUE(spend(3000).value().accepted);

  // Malware swaps yesterday's state file back in to "un-spend" 3000.
  world_.client().set_spending_state_blob(old_state);
  auto attempt = spend(3000);
  EXPECT_FALSE(attempt.ok());
  EXPECT_EQ(attempt.code(), Err::kReplay);
}

TEST_F(SpendingLimitTest, ZeroInitialLimitRejected) {
  auto attempt = spend(100, 0);
  EXPECT_FALSE(attempt.ok());
  EXPECT_EQ(attempt.code(), Err::kInvalidArgument);
}

TEST_F(SpendingLimitTest, RejectionDoesNotConsumeBudget) {
  ASSERT_TRUE(spend(1000).value().accepted);
  agent_.set_intended_summary("something else entirely");
  auto rejected = world_.client().submit_limited_transaction(
      "pay 2000 cents", bytes_of("p"), 2000, 10000);
  ASSERT_TRUE(rejected.ok());
  EXPECT_FALSE(rejected.value().accepted);
  // The running total is unchanged: only confirmed spends count.
  auto next = spend(1000);
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(next.value().spent_cents, 2000u);
}

TEST(LimitedMarshalling, RoundTrip) {
  core::PalLimitedConfirmInput in;
  in.tx_summary = "s";
  in.tx_digest = Bytes(32, 1);
  in.nonce = Bytes(20, 2);
  in.sealed_key = Bytes(64, 3);
  in.amount_cents = 1234;
  in.limit_cents = 99999;
  in.sealed_state = Bytes(40, 4);
  Bytes wire = in.marshal();
  auto back =
      core::PalLimitedConfirmInput::unmarshal(BytesView(wire).subspan(1));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().amount_cents, 1234u);
  EXPECT_EQ(back.value().limit_cents, 99999u);

  core::PalLimitedConfirmOutput out;
  out.verdict = Verdict::kConfirmed;
  out.signature = Bytes(96, 5);
  out.new_sealed_state = Bytes(40, 6);
  out.spent_cents = 777;
  out.limit_cents = 1000;
  out.limit_exceeded = false;
  auto out_back = core::PalLimitedConfirmOutput::unmarshal(out.marshal());
  ASSERT_TRUE(out_back.ok());
  EXPECT_EQ(out_back.value().spent_cents, 777u);
}

// ------------------------------------------------- Quote-design (A2)

class QuoteDesignTest : public ::testing::Test {
 protected:
  QuoteDesignTest() : platform_(make_platform()), driver_(platform_) {}

  static drtm::PlatformConfig make_platform() {
    drtm::PlatformConfig pc;
    pc.seed = bytes_of("quote-design");
    pc.tpm_key_bits = 768;
    return pc;
  }

  drtm::Platform platform_;
  pal::SessionDriver driver_;
};

TEST_F(QuoteDesignTest, QuoteConfirmationVerifies) {
  pal::HumanAgent agent(devices::HumanModel(perfect_human(), SimRng(2)),
                        "pay 10");
  driver_.set_user_agent(&agent);
  core::PalQuoteConfirmInput in;
  in.tx_summary = "pay 10";
  in.tx_digest = Bytes(32, 7);
  in.nonce = Bytes(20, 8);
  auto session = driver_.run(core::make_trusted_path_pal(), in.marshal());
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session.value().status.ok());
  auto out = core::PalQuoteConfirmOutput::unmarshal(session.value().output);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out.value().verdict, Verdict::kConfirmed);

  const std::vector<core::AttestationPolicy> accepted = {
      core::attestation_policy(drtm::DrtmTechnology::kAmdSkinit)};
  EXPECT_TRUE(core::verify_quote_confirmation(platform_.tpm().aik_public(),
                                              accepted, in.tx_digest,
                                              in.nonce, out.value().quote)
                  .ok());
}

TEST_F(QuoteDesignTest, QuoteBindsTransactionAndNonce) {
  pal::HumanAgent agent(devices::HumanModel(perfect_human(), SimRng(2)),
                        "pay 10");
  driver_.set_user_agent(&agent);
  core::PalQuoteConfirmInput in;
  in.tx_summary = "pay 10";
  in.tx_digest = Bytes(32, 7);
  in.nonce = Bytes(20, 8);
  auto session = driver_.run(core::make_trusted_path_pal(), in.marshal());
  auto out = core::PalQuoteConfirmOutput::unmarshal(session.value().output);
  ASSERT_TRUE(out.ok());

  const std::vector<core::AttestationPolicy> accepted = {
      core::attestation_policy(drtm::DrtmTechnology::kAmdSkinit)};
  // Different transaction or nonce: rejected.
  EXPECT_FALSE(core::verify_quote_confirmation(
                   platform_.tpm().aik_public(), accepted, Bytes(32, 9),
                   in.nonce, out.value().quote)
                   .ok());
  EXPECT_FALSE(core::verify_quote_confirmation(
                   platform_.tpm().aik_public(), accepted, in.tx_digest,
                   Bytes(20, 1), out.value().quote)
                   .ok());
}

TEST_F(QuoteDesignTest, TamperedPalQuoteFailsPolicy) {
  // Run the quote flow inside a patched PAL: the quote verifies as a
  // signature but its PCRs match no accepted policy.
  pal::HumanAgent agent(devices::HumanModel(perfect_human(), SimRng(2)),
                        "pay 10");
  driver_.set_user_agent(&agent);
  pal::PalDescriptor patched = core::make_trusted_path_pal();
  patched.image = pal::PalDescriptor::make_image(core::kPalName,
                                                 core::kPalVersion, "evil");
  core::PalQuoteConfirmInput in;
  in.tx_summary = "pay 10";
  in.tx_digest = Bytes(32, 7);
  in.nonce = Bytes(20, 8);
  auto session = driver_.run(patched, in.marshal());
  auto out = core::PalQuoteConfirmOutput::unmarshal(session.value().output);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out.value().verdict, Verdict::kConfirmed);

  const std::vector<core::AttestationPolicy> accepted = {
      core::attestation_policy(drtm::DrtmTechnology::kAmdSkinit)};
  EXPECT_EQ(core::verify_quote_confirmation(platform_.tpm().aik_public(),
                                            accepted, in.tx_digest, in.nonce,
                                            out.value().quote)
                .code(),
            Err::kPcrMismatch);
}

TEST(QuoteDesignMarshalling, RoundTrip) {
  core::PalQuoteConfirmInput in;
  in.tx_summary = "s";
  in.tx_digest = Bytes(32, 1);
  in.nonce = Bytes(20, 2);
  Bytes wire = in.marshal();
  EXPECT_TRUE(
      core::PalQuoteConfirmInput::unmarshal(BytesView(wire).subspan(1)).ok());

  core::PalQuoteConfirmOutput out;
  out.verdict = Verdict::kTimeout;
  EXPECT_TRUE(core::PalQuoteConfirmOutput::unmarshal(out.marshal()).ok());
}

}  // namespace
}  // namespace tp
