// TPM 1.2 emulator tests: PCR semantics, quote verification, sealing
// policies, wrapped keys, counters, NVRAM, and the timing model.
#include <gtest/gtest.h>

#include "crypto/sha1.h"
#include "tpm/chip_profile.h"
#include "tpm/pcr.h"
#include "tpm/privacy_ca.h"
#include "tpm/quote.h"
#include "tpm/tpm_device.h"

namespace tp::tpm {
namespace {

using crypto::Sha1;

Bytes digest_of(const std::string& s) { return Sha1::hash(bytes_of(s)); }

class TpmTest : public ::testing::Test {
 protected:
  TpmTest()
      : tpm_(default_chip(), bytes_of("tpm-test-seed"), clock_,
             TpmDevice::Options{.key_bits = 768}) {}

  SimClock clock_;
  TpmDevice tpm_;
};

// ------------------------------------------------------------------ PCRs

TEST(PcrBank, PowerOnState) {
  PcrBank bank;
  EXPECT_EQ(bank.read(0).value(), Bytes(kPcrSize, 0x00));
  EXPECT_EQ(bank.read(16).value(), Bytes(kPcrSize, 0x00));
  EXPECT_EQ(bank.read(17).value(), Bytes(kPcrSize, 0xff));
  EXPECT_EQ(bank.read(22).value(), Bytes(kPcrSize, 0xff));
  EXPECT_EQ(bank.read(23).value(), Bytes(kPcrSize, 0x00));
}

TEST(PcrBank, ExtendIsHashChain) {
  PcrBank bank;
  const Bytes d = digest_of("measurement");
  const Bytes v1 = bank.extend(0, d).value();
  EXPECT_EQ(v1, Sha1::hash(concat(Bytes(kPcrSize, 0x00), d)));
  const Bytes v2 = bank.extend(0, d).value();
  EXPECT_EQ(v2, Sha1::hash(concat(v1, d)));
  EXPECT_NE(v1, v2);  // extends never commute with identity
}

TEST(PcrBank, ExtendOrderMatters) {
  PcrBank a, b;
  (void)a.extend(0, digest_of("x"));
  (void)a.extend(0, digest_of("y"));
  (void)b.extend(0, digest_of("y"));
  (void)b.extend(0, digest_of("x"));
  EXPECT_NE(a.read(0).value(), b.read(0).value());
}

TEST(PcrBank, ExtendValidation) {
  PcrBank bank;
  EXPECT_FALSE(bank.extend(24, digest_of("x")).ok());
  EXPECT_FALSE(bank.extend(0, Bytes(19, 0)).ok());
}

TEST(PcrBank, ResetPolicy) {
  PcrBank bank;
  // Static PCRs never reset.
  EXPECT_EQ(bank.reset(0, Locality::kDrtmHardware).code(), Err::kBadState);
  // 16 and 23 reset at any locality.
  EXPECT_TRUE(bank.reset(16, Locality::kLegacy).ok());
  EXPECT_TRUE(bank.reset(23, Locality::kLegacy).ok());
  // 17 requires the hardware late-launch locality.
  EXPECT_EQ(bank.reset(17, Locality::kLegacy).code(),
            Err::kIsolationViolation);
  EXPECT_EQ(bank.reset(17, Locality::kPal).code(), Err::kIsolationViolation);
  EXPECT_TRUE(bank.reset(17, Locality::kDrtmHardware).ok());
  EXPECT_EQ(bank.read(17).value(), Bytes(kPcrSize, 0x00));
  // 19 resets from the PAL environment.
  EXPECT_TRUE(bank.reset(19, Locality::kPal).ok());
  EXPECT_FALSE(bank.reset(19, Locality::kOs).ok());
}

TEST(PcrBank, SoftwareCannotFakeCleanDrtmState) {
  // The invariant behind the whole design: without locality 4, PCR17 can
  // never reach the value a genuine late launch would produce.
  PcrBank bank;
  EXPECT_FALSE(bank.reset(17, Locality::kOs).ok());
  // Extending from the all-ones state can never produce the post-reset
  // extend chain, because the chain starts from zeros.
  const Bytes pal_digest = digest_of("pal");
  PcrBank launched;
  ASSERT_TRUE(launched.reset(17, Locality::kDrtmHardware).ok());
  (void)launched.extend(17, pal_digest);
  (void)bank.extend(17, pal_digest);
  EXPECT_NE(bank.read(17).value(), launched.read(17).value());
}

TEST(PcrSelection, SortedUniqueAndSerialization) {
  const PcrSelection sel = PcrSelection::of({18, 17, 18});
  EXPECT_EQ(sel.indices, (std::vector<std::uint32_t>{17, 18}));
  auto back = PcrSelection::deserialize(sel.serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), sel);
}

TEST(PcrSelection, DeserializeRejectsMalformed) {
  EXPECT_FALSE(PcrSelection::deserialize(Bytes{1, 2}).ok());
  // Out-of-range index.
  PcrSelection sel;
  sel.indices = {30};
  EXPECT_FALSE(PcrSelection::deserialize(sel.serialize()).ok());
  // Unsorted.
  PcrSelection bad;
  bad.indices = {5, 3};
  EXPECT_FALSE(PcrSelection::deserialize(bad.serialize()).ok());
}

TEST(PcrBank, CompositeBindsSelectionAndValues) {
  PcrBank bank;
  const Bytes c1 = bank.composite(PcrSelection::of({0, 1})).value();
  const Bytes c2 = bank.composite(PcrSelection::of({0, 2})).value();
  EXPECT_NE(c1, c2);  // same values (all zero), different selection
  (void)bank.extend(0, digest_of("m"));
  EXPECT_NE(bank.composite(PcrSelection::of({0, 1})).value(), c1);
}

TEST(PcrBank, CompositeOfValidation) {
  EXPECT_FALSE(PcrBank::composite_of(PcrSelection{}, {}).ok());
  EXPECT_FALSE(
      PcrBank::composite_of(PcrSelection::of({0}), {Bytes(19, 0)}).ok());
  EXPECT_FALSE(PcrBank::composite_of(PcrSelection::of({0, 1}),
                                     {Bytes(kPcrSize, 0)})
                   .ok());
}

// ---------------------------------------------------------------- Quote

TEST_F(TpmTest, QuoteVerifies) {
  (void)tpm_.pcr_extend(Locality::kOs, 10, digest_of("app"));
  const Bytes nonce = tpm_.get_random(20);
  auto quote = tpm_.quote(nonce, PcrSelection::of({10}));
  ASSERT_TRUE(quote.ok());
  EXPECT_TRUE(verify_quote(tpm_.aik_public(), quote.value(), nonce).ok());
}

TEST_F(TpmTest, QuoteRejectsWrongNonce) {
  const Bytes nonce = tpm_.get_random(20);
  auto quote = tpm_.quote(nonce, PcrSelection::of({10}));
  ASSERT_TRUE(quote.ok());
  const Bytes other(20, 0xab);
  EXPECT_EQ(verify_quote(tpm_.aik_public(), quote.value(), other).code(),
            Err::kNonceMismatch);
}

TEST_F(TpmTest, QuoteRejectsTamperedPcrValues) {
  const Bytes nonce = tpm_.get_random(20);
  auto quote = tpm_.quote(nonce, PcrSelection::of({10}));
  ASSERT_TRUE(quote.ok());
  QuoteResult forged = quote.value();
  forged.pcr_values[0] = digest_of("forged value");
  EXPECT_EQ(verify_quote(tpm_.aik_public(), forged, nonce).code(),
            Err::kAuthFail);
}

TEST_F(TpmTest, QuoteRejectsTamperedSelection) {
  const Bytes nonce = tpm_.get_random(20);
  auto quote = tpm_.quote(nonce, PcrSelection::of({10}));
  ASSERT_TRUE(quote.ok());
  QuoteResult forged = quote.value();
  forged.selection = PcrSelection::of({11});
  EXPECT_FALSE(verify_quote(tpm_.aik_public(), forged, nonce).ok());
}

TEST_F(TpmTest, QuoteRejectsWrongAik) {
  SimClock clock2;
  TpmDevice other(default_chip(), bytes_of("other-seed"), clock2,
                  TpmDevice::Options{.key_bits = 768});
  const Bytes nonce = tpm_.get_random(20);
  auto quote = tpm_.quote(nonce, PcrSelection::of({10}));
  ASSERT_TRUE(quote.ok());
  EXPECT_FALSE(verify_quote(other.aik_public(), quote.value(), nonce).ok());
}

TEST_F(TpmTest, QuoteSerializationRoundTrip) {
  const Bytes nonce = tpm_.get_random(20);
  auto quote = tpm_.quote(nonce, PcrSelection::drtm());
  ASSERT_TRUE(quote.ok());
  auto back = QuoteResult::deserialize(quote.value().serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(verify_quote(tpm_.aik_public(), back.value(), nonce).ok());
}

// ----------------------------------------------------------------- Seal

TEST_F(TpmTest, SealUnsealRoundTrip) {
  (void)tpm_.pcr_extend(Locality::kOs, 10, digest_of("state"));
  const Bytes secret = bytes_of("the confirmation signing key");
  auto blob = tpm_.seal(Locality::kOs, PcrSelection::of({10}), 0xff, secret);
  ASSERT_TRUE(blob.ok());
  auto out = tpm_.unseal(Locality::kOs, blob.value());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value(), secret);
}

TEST_F(TpmTest, UnsealFailsAfterPcrChange) {
  auto blob = tpm_.seal(Locality::kOs, PcrSelection::of({10}), 0xff,
                        bytes_of("secret"));
  ASSERT_TRUE(blob.ok());
  (void)tpm_.pcr_extend(Locality::kOs, 10, digest_of("different state"));
  EXPECT_EQ(tpm_.unseal(Locality::kOs, blob.value()).code(),
            Err::kPcrMismatch);
}

TEST_F(TpmTest, UnsealEnforcesLocality) {
  // Release allowed only at locality 2 (the PAL).
  auto blob = tpm_.seal(Locality::kOs, PcrSelection::of({10}),
                        static_cast<std::uint8_t>(1u << 2), bytes_of("s"));
  ASSERT_TRUE(blob.ok());
  EXPECT_EQ(tpm_.unseal(Locality::kOs, blob.value()).code(),
            Err::kIsolationViolation);
  EXPECT_TRUE(tpm_.unseal(Locality::kPal, blob.value()).ok());
}

TEST_F(TpmTest, UnsealRejectsTamperedBlob) {
  auto blob = tpm_.seal(Locality::kOs, PcrSelection::of({10}), 0xff,
                        bytes_of("secret"));
  ASSERT_TRUE(blob.ok());
  Bytes tampered = blob.value();
  tampered[tampered.size() / 2] ^= 0x01;
  EXPECT_EQ(tpm_.unseal(Locality::kOs, tampered).code(), Err::kAuthFail);
  EXPECT_EQ(tpm_.unseal(Locality::kOs, Bytes{1, 2, 3}).code(),
            Err::kAuthFail);
}

TEST_F(TpmTest, SealedBlobIsDeviceBound) {
  SimClock clock2;
  TpmDevice other(default_chip(), bytes_of("other-device"), clock2,
                  TpmDevice::Options{.key_bits = 768});
  auto blob = tpm_.seal(Locality::kOs, PcrSelection::of({10}), 0xff,
                        bytes_of("secret"));
  ASSERT_TRUE(blob.ok());
  EXPECT_EQ(other.unseal(Locality::kOs, blob.value()).code(), Err::kAuthFail);
}

TEST_F(TpmTest, SealToTargetsFutureConfiguration) {
  // Seal against PCR17 values of a configuration that is NOT live yet:
  // pre-computed post-launch values (what the enrollment PAL does).
  const Bytes pal_digest = digest_of("golden pal");
  Bytes pcr17_after = Sha1::hash(concat(Bytes(kPcrSize, 0x00), pal_digest));
  auto blob = tpm_.seal_to(Locality::kOs, PcrSelection::of({17}),
                           {pcr17_after}, 0xff, bytes_of("for the pal"));
  ASSERT_TRUE(blob.ok());
  // Live PCR17 is all-ones (no launch): unseal fails.
  EXPECT_EQ(tpm_.unseal(Locality::kPal, blob.value()).code(),
            Err::kPcrMismatch);
  // Simulate the hardware launch: reset + extend the golden digest.
  ASSERT_TRUE(tpm_.pcr_reset(Locality::kDrtmHardware, 17).ok());
  ASSERT_TRUE(tpm_.pcr_extend(Locality::kDrtmHardware, 17, pal_digest).ok());
  EXPECT_TRUE(tpm_.unseal(Locality::kPal, blob.value()).ok());
}

TEST_F(TpmTest, EmptyPayloadSealable) {
  auto blob = tpm_.seal(Locality::kOs, PcrSelection::of({10}), 0xff, {});
  ASSERT_TRUE(blob.ok());
  auto out = tpm_.unseal(Locality::kOs, blob.value());
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out.value().empty());
}

// ----------------------------------------------------------- Wrapped keys

TEST_F(TpmTest, WrapKeySignVerify) {
  (void)tpm_.pcr_extend(Locality::kOs, 10, digest_of("config"));
  auto wrapped = tpm_.create_wrap_key(PcrSelection::of({10}));
  ASSERT_TRUE(wrapped.ok());
  auto handle = tpm_.load_key2(wrapped.value());
  ASSERT_TRUE(handle.ok());
  auto pub = tpm_.key_public(handle.value());
  ASSERT_TRUE(pub.ok());

  const Bytes msg = bytes_of("statement");
  auto sig = tpm_.sign(handle.value(), msg);
  ASSERT_TRUE(sig.ok());
  EXPECT_TRUE(crypto::rsa_verify(pub.value(), crypto::HashAlg::kSha256, msg,
                                 sig.value())
                  .ok());
}

TEST_F(TpmTest, SignEnforcesPcrPolicyAtUseTime) {
  auto wrapped = tpm_.create_wrap_key(PcrSelection::of({10}));
  ASSERT_TRUE(wrapped.ok());
  auto handle = tpm_.load_key2(wrapped.value());
  ASSERT_TRUE(handle.ok());
  ASSERT_TRUE(tpm_.sign(handle.value(), bytes_of("ok")).ok());
  // Change the platform state: the loaded key must refuse to sign.
  (void)tpm_.pcr_extend(Locality::kOs, 10, digest_of("malware ran"));
  EXPECT_EQ(tpm_.sign(handle.value(), bytes_of("bad")).code(),
            Err::kPcrMismatch);
}

TEST_F(TpmTest, LoadKeyRejectsTamperedBlob) {
  auto wrapped = tpm_.create_wrap_key(PcrSelection::of({10}));
  ASSERT_TRUE(wrapped.ok());
  Bytes tampered = wrapped.value();
  tampered[10] ^= 0x01;
  EXPECT_EQ(tpm_.load_key2(tampered).code(), Err::kAuthFail);
}

TEST_F(TpmTest, WrappedKeyIsDeviceBound) {
  SimClock clock2;
  TpmDevice other(default_chip(), bytes_of("other"), clock2,
                  TpmDevice::Options{.key_bits = 768});
  auto wrapped = tpm_.create_wrap_key(PcrSelection::of({10}));
  ASSERT_TRUE(wrapped.ok());
  EXPECT_FALSE(other.load_key2(wrapped.value()).ok());
}

TEST_F(TpmTest, FlushKeyInvalidatesHandle) {
  auto wrapped = tpm_.create_wrap_key(PcrSelection::of({10}));
  auto handle = tpm_.load_key2(wrapped.value());
  ASSERT_TRUE(handle.ok());
  tpm_.flush_key(handle.value());
  EXPECT_EQ(tpm_.sign(handle.value(), bytes_of("x")).code(), Err::kNotFound);
  EXPECT_FALSE(tpm_.key_public(handle.value()).ok());
}

TEST_F(TpmTest, SealBlobNotLoadableAsKey) {
  auto blob = tpm_.seal(Locality::kOs, PcrSelection::of({10}), 0xff,
                        bytes_of("data"));
  ASSERT_TRUE(blob.ok());
  EXPECT_FALSE(tpm_.load_key2(blob.value()).ok());
}

// ---------------------------------------------------- Counters and NVRAM

TEST_F(TpmTest, MonotonicCounter) {
  EXPECT_EQ(tpm_.counter_read(1).value(), 0u);
  EXPECT_EQ(tpm_.counter_increment(1).value(), 1u);
  EXPECT_EQ(tpm_.counter_increment(1).value(), 2u);
  EXPECT_EQ(tpm_.counter_read(1).value(), 2u);
  EXPECT_EQ(tpm_.counter_read(2).value(), 0u);  // independent counters
}

TEST_F(TpmTest, NvramLifecycle) {
  ASSERT_TRUE(tpm_.nv_define(0x1000, 64).ok());
  EXPECT_EQ(tpm_.nv_define(0x1000, 64).code(), Err::kBadState);
  EXPECT_FALSE(tpm_.nv_define(0x2000, 0).ok());
  EXPECT_FALSE(tpm_.nv_define(0x2000, 1 << 20).ok());

  ASSERT_TRUE(tpm_.nv_write(0x1000, bytes_of("golden-measurement")).ok());
  auto data = tpm_.nv_read(0x1000);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(string_of(BytesView(data.value()).subspan(0, 18)),
            "golden-measurement");

  EXPECT_EQ(tpm_.nv_write(0x9999, bytes_of("x")).code(), Err::kNotFound);
  EXPECT_EQ(tpm_.nv_read(0x9999).code(), Err::kNotFound);
  EXPECT_FALSE(tpm_.nv_write(0x1000, Bytes(65, 0)).ok());
}

// --------------------------------------------------------- Timing model

TEST_F(TpmTest, CommandsChargeVirtualTime) {
  const SimTime before = clock_.now();
  (void)tpm_.quote(tpm_.get_random(16), PcrSelection::of({10}));
  // Quote charges quote-time plus one GetRandom block for the nonce;
  // internal PCR reads are free.
  EXPECT_EQ((clock_.now() - before).ns,
            (default_chip().quote + default_chip().get_random_16).ns);
  EXPECT_GT(clock_.total_for("tpm:quote").ns, 0);
}

TEST_F(TpmTest, SlowChipCostsMore) {
  SimClock clock_slow;
  TpmDevice slow(chip_by_name("Broadcom BCM5752"), bytes_of("s"), clock_slow,
                 TpmDevice::Options{.key_bits = 768});
  SimClock clock_fast;
  TpmDevice fast(chip_by_name("Infineon SLB9635"), bytes_of("s"), clock_fast,
                 TpmDevice::Options{.key_bits = 768});
  (void)slow.seal(Locality::kOs, PcrSelection::of({10}), 0xff, bytes_of("x"));
  (void)fast.seal(Locality::kOs, PcrSelection::of({10}), 0xff, bytes_of("x"));
  EXPECT_GT(clock_slow.now().ns, clock_fast.now().ns);
}

TEST_F(TpmTest, GetRandomChargesPerBlock) {
  SimClock c;
  TpmDevice t(default_chip(), bytes_of("r"), c,
              TpmDevice::Options{.key_bits = 768});
  (void)t.get_random(16);
  const auto one_block = c.now();
  (void)t.get_random(64);
  EXPECT_EQ((c.now() - one_block).ns, default_chip().get_random_16.ns * 4);
}

TEST_F(TpmTest, CommandCountTracksUsage) {
  const auto before = tpm_.command_count();
  (void)tpm_.pcr_read(0);
  (void)tpm_.get_random(8);
  EXPECT_EQ(tpm_.command_count(), before + 2);
}

TEST(ChipProfiles, CatalogueIsSane) {
  EXPECT_EQ(standard_chips().size(), 4u);
  EXPECT_THROW(chip_by_name("nonexistent"), std::invalid_argument);
  for (const auto& chip : standard_chips()) {
    EXPECT_GT(chip.quote.ns, 0) << chip.name;
    EXPECT_GT(chip.seal.ns, 0) << chip.name;
    EXPECT_GT(chip.unseal.ns, 0) << chip.name;
    // The paper's premise: storage/attestation ops are hundreds of ms,
    // i.e., they dominate a session; reads are cheap.
    EXPECT_GT(chip.quote.ns, SimDuration::millis(100).ns) << chip.name;
    EXPECT_LT(chip.pcr_read.ns, SimDuration::millis(10).ns) << chip.name;
  }
}

// ----------------------------------------------------------- Privacy CA

TEST(PrivacyCaTest, CertifyAndVerify) {
  SimClock clock;
  TpmDevice tpm(default_chip(), bytes_of("t"), clock,
                TpmDevice::Options{.key_bits = 768});
  PrivacyCa ca(bytes_of("ca-seed"), 768);
  const AikCertificate cert = ca.certify("platform-1", tpm.aik_public());
  EXPECT_TRUE(PrivacyCa::verify(ca.public_key(), cert).ok());
}

TEST(PrivacyCaTest, VerifyRejectsTamperedIdentity) {
  SimClock clock;
  TpmDevice tpm(default_chip(), bytes_of("t"), clock,
                TpmDevice::Options{.key_bits = 768});
  PrivacyCa ca(bytes_of("ca-seed"), 768);
  AikCertificate cert = ca.certify("platform-1", tpm.aik_public());
  cert.platform_id = "platform-2";
  EXPECT_EQ(PrivacyCa::verify(ca.public_key(), cert).code(), Err::kAuthFail);
}

TEST(PrivacyCaTest, VerifyRejectsWrongCa) {
  SimClock clock;
  TpmDevice tpm(default_chip(), bytes_of("t"), clock,
                TpmDevice::Options{.key_bits = 768});
  PrivacyCa ca(bytes_of("ca-1"), 768), rogue(bytes_of("ca-2"), 768);
  const AikCertificate cert = ca.certify("platform-1", tpm.aik_public());
  EXPECT_FALSE(PrivacyCa::verify(rogue.public_key(), cert).ok());
}

TEST(PrivacyCaTest, CertificateSerializationRoundTrip) {
  SimClock clock;
  TpmDevice tpm(default_chip(), bytes_of("t"), clock,
                TpmDevice::Options{.key_bits = 768});
  PrivacyCa ca(bytes_of("ca-seed"), 768);
  const AikCertificate cert = ca.certify("platform-1", tpm.aik_public());
  auto back = AikCertificate::deserialize(cert.serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(PrivacyCa::verify(ca.public_key(), back.value()).ok());
  EXPECT_EQ(back.value().platform_id, "platform-1");
}

}  // namespace
}  // namespace tp::tpm
