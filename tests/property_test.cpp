// Property-based tests: parameterized sweeps over the invariants listed
// in DESIGN.md ("Security invariants"), plus algebraic laws of the
// bignum layer. TEST_P keeps each law tested across the whole parameter
// grid rather than at hand-picked points.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/trusted_path_pal.h"
#include "crypto/bignum.h"
#include "crypto/rsa.h"
#include "crypto/sha1.h"
#include "crypto/drbg.h"
#include "pal/human_agent.h"
#include "pal/session.h"
#include "sp/deployment.h"
#include "tpm/tpm_device.h"

namespace tp {
namespace {

std::function<Bytes(std::size_t)> entropy(const std::string& label) {
  auto drbg = std::make_shared<crypto::HmacDrbg>(bytes_of("prop:" + label));
  return [drbg](std::size_t n) { return drbg->generate(n); };
}

// ----------------------------------------------------- BigInt laws

class BigIntLaws : public ::testing::TestWithParam<std::size_t> {
 protected:
  crypto::BigInt random_of_size(const std::function<Bytes(std::size_t)>& e) {
    return crypto::BigInt::from_bytes_be(e((GetParam() + 7) / 8));
  }
};

TEST_P(BigIntLaws, AddSubInverse) {
  auto e = entropy("addsub" + std::to_string(GetParam()));
  for (int i = 0; i < 30; ++i) {
    const auto a = random_of_size(e);
    const auto b = random_of_size(e);
    EXPECT_EQ((a + b) - b, a);
    EXPECT_EQ((a + b) - a, b);
  }
}

TEST_P(BigIntLaws, MulDivInverse) {
  auto e = entropy("muldiv" + std::to_string(GetParam()));
  for (int i = 0; i < 30; ++i) {
    const auto a = random_of_size(e);
    auto b = random_of_size(e);
    if (b.is_zero()) b = crypto::BigInt(1);
    EXPECT_EQ((a * b) / b, a);
    EXPECT_TRUE(((a * b) % b).is_zero());
  }
}

TEST_P(BigIntLaws, MulCommutesAndDistributes) {
  auto e = entropy("ring" + std::to_string(GetParam()));
  for (int i = 0; i < 20; ++i) {
    const auto a = random_of_size(e);
    const auto b = random_of_size(e);
    const auto c = random_of_size(e);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ(a * (b + c), a * b + a * c);
  }
}

TEST_P(BigIntLaws, ModExpExponentAddition) {
  // a^(e1+e2) == a^e1 * a^e2 (mod m), exercising the Montgomery path.
  auto e = entropy("expadd" + std::to_string(GetParam()));
  for (int i = 0; i < 10; ++i) {
    auto m = random_of_size(e);
    if (m.is_zero()) m = crypto::BigInt(7);
    if (m.is_even()) m = m + crypto::BigInt(1);
    if (m == crypto::BigInt(1)) m = crypto::BigInt(3);
    const auto a = random_of_size(e);
    const auto e1 = crypto::BigInt::from_bytes_be(e(3));
    const auto e2 = crypto::BigInt::from_bytes_be(e(3));
    const auto lhs = crypto::BigInt::mod_exp(a, e1 + e2, m);
    const auto rhs = crypto::BigInt::mod_mul(
        crypto::BigInt::mod_exp(a, e1, m), crypto::BigInt::mod_exp(a, e2, m),
        m);
    EXPECT_EQ(lhs, rhs) << "bits=" << GetParam() << " i=" << i;
  }
}

TEST_P(BigIntLaws, ShiftsAreMulDivByPowersOfTwo) {
  auto e = entropy("shift" + std::to_string(GetParam()));
  for (std::size_t k : {1u, 7u, 31u, 32u, 33u, 64u}) {
    const auto a = random_of_size(e);
    const auto p = crypto::BigInt(1) << k;
    EXPECT_EQ(a << k, a * p);
    EXPECT_EQ(a >> k, a / p);
  }
}

TEST_P(BigIntLaws, ByteRoundTripAnySize) {
  auto e = entropy("bytes" + std::to_string(GetParam()));
  for (int i = 0; i < 20; ++i) {
    const auto a = random_of_size(e);
    EXPECT_EQ(crypto::BigInt::from_bytes_be(a.to_bytes_be()), a);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, BigIntLaws,
                         ::testing::Values(32, 64, 128, 256, 512, 1024));

TEST_P(BigIntLaws, SmallExponentPathMatchesWindowed) {
  // The small-exponent fast path and the 4-bit windowed path must agree
  // for every exponent, in particular across the kSmallExpBits boundary
  // where mod_exp switches between them.
  auto e = entropy("smallexp" + std::to_string(GetParam()));
  auto m = random_of_size(e);
  if (m.is_even()) m = m + crypto::BigInt(1);
  if (m < crypto::BigInt(3)) m = crypto::BigInt(0x10001);
  const crypto::MontgomeryCtx ctx(m);

  const std::uint64_t boundary = 1ull << crypto::MontgomeryCtx::kSmallExpBits;
  std::vector<crypto::BigInt> exps = {
      crypto::BigInt(1),        crypto::BigInt(2),
      crypto::BigInt(3),        crypto::BigInt(65537),
      crypto::BigInt(boundary - 1),  // widest exponent on the small path
      crypto::BigInt(boundary),      // first exponent on the windowed path
      crypto::BigInt(boundary + 1),
  };
  for (int i = 0; i < 6; ++i) {
    exps.push_back(crypto::BigInt::from_bytes_be(e(3)));  // <= 24 bits
    exps.push_back(crypto::BigInt::from_bytes_be(e(5)));  // > 24 bits
  }
  for (const auto& exp : exps) {
    const auto base = random_of_size(e);
    const auto via_ctx = ctx.mod_exp(base, exp);
    const auto via_windowed = ctx.mod_exp_windowed(base, exp);
    EXPECT_EQ(via_ctx, via_windowed)
        << "exp bits=" << exp.bit_length();
    EXPECT_EQ(via_ctx, crypto::BigInt::mod_exp(base, exp, m))
        << "exp bits=" << exp.bit_length();
  }
}

// ------------------------------------------ RSA verify-context parity

class RsaVerifyCtxParity : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RsaVerifyCtxParity, CachedVerifyAgreesWithUncached) {
  // The per-key cached context must return bit-identical verdicts to the
  // free function: on genuine signatures, corrupted signatures, wrong
  // messages, and wrong-length inputs.
  auto e = entropy("vctx" + std::to_string(GetParam()));
  const auto key = crypto::rsa_generate(GetParam(), e);
  const crypto::RsaVerifyContext ctx(key.public_key());

  for (int i = 0; i < 8; ++i) {
    const Bytes msg = e(1 + (static_cast<std::size_t>(i) * 17) % 100);
    Bytes sig = crypto::rsa_sign(key, crypto::HashAlg::kSha256, msg);

    EXPECT_TRUE(ctx.verify(crypto::HashAlg::kSha256, msg, sig).ok());
    EXPECT_TRUE(crypto::rsa_verify(key.public_key(), crypto::HashAlg::kSha256,
                                   msg, sig)
                    .ok());

    // Single-bit corruption anywhere in the signature must fail both.
    Bytes bad = sig;
    bad[(static_cast<std::size_t>(i) * 31) % bad.size()] ^= 0x40;
    EXPECT_EQ(ctx.verify(crypto::HashAlg::kSha256, msg, bad).ok(),
              crypto::rsa_verify(key.public_key(), crypto::HashAlg::kSha256,
                                 msg, bad)
                  .ok());
    EXPECT_FALSE(ctx.verify(crypto::HashAlg::kSha256, msg, bad).ok());

    // Wrong message.
    const Bytes other = concat(msg, bytes_of("x"));
    EXPECT_FALSE(ctx.verify(crypto::HashAlg::kSha256, other, sig).ok());

    // Truncated signature.
    Bytes trunc(sig.begin(), sig.end() - 1);
    EXPECT_FALSE(ctx.verify(crypto::HashAlg::kSha256, msg, trunc).ok());
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RsaVerifyCtxParity,
                         ::testing::Values(512, 768, 1024));

// ------------------------------------------- Seal/unseal policy matrix

struct SealCase {
  std::uint8_t locality_mask;
  tpm::Locality attempt;
  bool should_release;  // assuming PCRs match
};

class SealPolicyMatrix : public ::testing::TestWithParam<SealCase> {};

TEST_P(SealPolicyMatrix, LocalityMaskHonoured) {
  SimClock clock;
  tpm::TpmDevice tpm(tpm::default_chip(), bytes_of("seal-matrix"), clock,
                     tpm::TpmDevice::Options{.key_bits = 768});
  const auto& param = GetParam();
  auto blob = tpm.seal(tpm::Locality::kOs, tpm::PcrSelection::of({10}),
                       param.locality_mask, bytes_of("payload"));
  ASSERT_TRUE(blob.ok());
  auto out = tpm.unseal(param.attempt, blob.value());
  if (param.should_release) {
    ASSERT_TRUE(out.ok()) << out.error().to_string();
    EXPECT_EQ(string_of(out.value()), "payload");
  } else {
    EXPECT_EQ(out.code(), Err::kIsolationViolation);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, SealPolicyMatrix,
    ::testing::Values(
        // PAL-only blob.
        SealCase{1u << 2, tpm::Locality::kPal, true},
        SealCase{1u << 2, tpm::Locality::kOs, false},
        SealCase{1u << 2, tpm::Locality::kLegacy, false},
        // OS-only blob.
        SealCase{1u << 1, tpm::Locality::kOs, true},
        SealCase{1u << 1, tpm::Locality::kPal, false},
        // Anything-goes blob.
        SealCase{0xff, tpm::Locality::kLegacy, true},
        SealCase{0xff, tpm::Locality::kDrtmHardware, true},
        // Nobody blob (mask 0): sealed forever.
        SealCase{0x00, tpm::Locality::kPal, false},
        SealCase{0x00, tpm::Locality::kOs, false}));

// ---------------------------------------- Unseal vs PCR perturbation

class UnsealPcrSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(UnsealPcrSweep, AnySelectedPcrChangeBlocksRelease) {
  SimClock clock;
  tpm::TpmDevice tpm(tpm::default_chip(), bytes_of("pcr-sweep"), clock,
                     tpm::TpmDevice::Options{.key_bits = 768});
  const auto selection = tpm::PcrSelection::of({4, 10, 14});
  auto blob = tpm.seal(tpm::Locality::kOs, selection, 0xff, bytes_of("s"));
  ASSERT_TRUE(blob.ok());

  const std::uint32_t touched = GetParam();
  (void)tpm.pcr_extend(tpm::Locality::kOs, touched,
                       crypto::Sha1::hash(bytes_of("perturbation")));
  auto out = tpm.unseal(tpm::Locality::kOs, blob.value());
  const bool selected = touched == 4 || touched == 10 || touched == 14;
  if (selected) {
    EXPECT_EQ(out.code(), Err::kPcrMismatch) << "pcr " << touched;
  } else {
    EXPECT_TRUE(out.ok()) << "pcr " << touched;
  }
}

INSTANTIATE_TEST_SUITE_P(Pcrs, UnsealPcrSweep,
                         ::testing::Values(0, 4, 5, 9, 10, 11, 14, 15));

// --------------------------------- Confirmation across parameter grid

struct ConfirmCase {
  std::uint32_t code_len;
  std::uint32_t max_attempts;
  const char* chip;
};

class ConfirmGrid : public ::testing::TestWithParam<ConfirmCase> {};

TEST_P(ConfirmGrid, HappyPathHoldsEverywhere) {
  const auto& param = GetParam();
  sp::DeploymentConfig cfg;
  cfg.client_id = "grid";
  cfg.chip_name = param.chip;
  cfg.seed = bytes_of(std::string("grid:") + param.chip +
                      std::to_string(param.code_len));
  cfg.tpm_key_bits = 768;
  cfg.client_key_bits = 768;
  sp::Deployment world(cfg);

  devices::HumanParams hp;
  hp.typo_prob = 0.0;
  pal::HumanAgent agent(devices::HumanModel(hp, SimRng(param.code_len)),
                        "pay 1 EUR");
  world.client().set_user_agent(&agent);
  ASSERT_TRUE(world.client().enroll().ok());
  auto outcome = world.client().submit_transaction("pay 1 EUR", {});
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome.value().accepted);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ConfirmGrid,
    ::testing::Values(ConfirmCase{1, 1, "Infineon SLB9635"},
                      ConfirmCase{4, 3, "Infineon SLB9635"},
                      ConfirmCase{12, 3, "Infineon SLB9635"},
                      ConfirmCase{6, 1, "Broadcom BCM5752"},
                      ConfirmCase{6, 3, "Atmel AT97SC3203"},
                      ConfirmCase{6, 5, "STMicro ST19NP18"}));

// ------------------------------ Quote verification across selections

class QuoteSelectionSweep
    : public ::testing::TestWithParam<std::vector<std::uint32_t>> {};

TEST_P(QuoteSelectionSweep, QuoteBindsExactSelection) {
  SimClock clock;
  tpm::TpmDevice tpm(tpm::default_chip(), bytes_of("quote-sweep"), clock,
                     tpm::TpmDevice::Options{.key_bits = 768});
  tpm::PcrSelection selection;
  selection.indices = GetParam();
  (void)tpm.pcr_extend(tpm::Locality::kOs, 3,
                       crypto::Sha1::hash(bytes_of("boot")));
  const Bytes nonce(20, 0x3c);
  auto quote = tpm.quote(nonce, selection);
  ASSERT_TRUE(quote.ok());
  EXPECT_TRUE(tpm::verify_quote(tpm.aik_public(), quote.value(), nonce).ok());

  // Dropping or adding one PCR from the reported set must break it.
  tpm::QuoteResult mutated = quote.value();
  mutated.pcr_values.back()[0] ^= 1;
  EXPECT_FALSE(
      tpm::verify_quote(tpm.aik_public(), mutated, nonce).ok());
}

INSTANTIATE_TEST_SUITE_P(
    Selections, QuoteSelectionSweep,
    ::testing::Values(std::vector<std::uint32_t>{0},
                      std::vector<std::uint32_t>{3},
                      std::vector<std::uint32_t>{17},
                      std::vector<std::uint32_t>{17, 18},
                      std::vector<std::uint32_t>{0, 3, 17, 18, 23}));

// ------------------------------------------ Human typo-rate behaviour

class TypoRateSweep : public ::testing::TestWithParam<double> {};

TEST_P(TypoRateSweep, ObservedRateTracksParameter) {
  devices::HumanParams p;
  p.typo_prob = GetParam();
  devices::HumanModel human(p, SimRng(77));
  int wrong = 0;
  const int kTrials = 600;
  for (int i = 0; i < kTrials; ++i) {
    devices::Keyboard kb;
    (void)human.respond_to_confirmation(
        devices::DisplayContent{{"TX: t", "CODE: abcd"}}, "t", kb);
    if (kb.read_line() != "abcd") ++wrong;
  }
  const double expected = 1.0 - std::pow(1.0 - GetParam(), 4);
  EXPECT_NEAR(wrong / static_cast<double>(kTrials), expected, 0.07);
}

INSTANTIATE_TEST_SUITE_P(Rates, TypoRateSweep,
                         ::testing::Values(0.0, 0.02, 0.1, 0.3));

}  // namespace
}  // namespace tp
