// Captcha baseline tests: service lifecycle and solver models.
#include <gtest/gtest.h>

#include "captcha/captcha.h"

namespace tp::captcha {
namespace {

TEST(CaptchaService, IssueAndSolveCorrectly) {
  CaptchaService service(bytes_of("seed"));
  const CaptchaChallenge ch = service.issue(0.5);
  EXPECT_EQ(ch.embedded_text.size(), 6u);
  EXPECT_TRUE(service.verify(ch.id, ch.embedded_text).ok());
  EXPECT_EQ(service.issued(), 1u);
  EXPECT_EQ(service.solved(), 1u);
}

TEST(CaptchaService, WrongAnswerRejected) {
  CaptchaService service(bytes_of("seed"));
  const CaptchaChallenge ch = service.issue(0.5);
  EXPECT_EQ(service.verify(ch.id, "wrong!").code(), Err::kAuthFail);
}

TEST(CaptchaService, ChallengesAreOneShot) {
  CaptchaService service(bytes_of("seed"));
  const CaptchaChallenge ch = service.issue(0.5);
  ASSERT_TRUE(service.verify(ch.id, ch.embedded_text).ok());
  EXPECT_EQ(service.verify(ch.id, ch.embedded_text).code(), Err::kNotFound);
}

TEST(CaptchaService, WrongAnswerConsumesChallenge) {
  CaptchaService service(bytes_of("seed"));
  const CaptchaChallenge ch = service.issue(0.5);
  ASSERT_FALSE(service.verify(ch.id, "wrong!").ok());
  // No second chance on the same challenge (anti brute-force).
  EXPECT_EQ(service.verify(ch.id, ch.embedded_text).code(), Err::kNotFound);
}

TEST(CaptchaService, UnknownIdRejected) {
  CaptchaService service(bytes_of("seed"));
  EXPECT_EQ(service.verify(12345, "x").code(), Err::kNotFound);
}

TEST(CaptchaService, ChallengesAreDistinct) {
  CaptchaService service(bytes_of("seed"));
  const auto a = service.issue(0.3);
  const auto b = service.issue(0.3);
  EXPECT_NE(a.id, b.id);
  EXPECT_NE(a.embedded_text, b.embedded_text);
}

TEST(CaptchaService, DistortionClamped) {
  CaptchaService service(bytes_of("seed"));
  EXPECT_EQ(service.issue(7.0).distortion, 1.0);
  EXPECT_EQ(service.issue(-3.0).distortion, 0.0);
}

TEST(HumanSolveProb, DegradesWithDistortion) {
  EXPECT_DOUBLE_EQ(human_solve_prob(0.92, 0.0), 0.92);
  EXPECT_GT(human_solve_prob(0.92, 0.2), human_solve_prob(0.92, 0.8));
  EXPECT_GE(human_solve_prob(0.1, 1.0), 0.2);  // floor
}

TEST(OcrAttacker, StrengthAndDistortionShapeSolveProb) {
  SimRng rng(1);
  OcrAttacker weak(0.3, rng.fork(1));
  OcrAttacker strong(0.95, rng.fork(2));
  // Stronger attackers solve more at every distortion.
  for (double d : {0.0, 0.3, 0.6, 0.9}) {
    EXPECT_GT(strong.solve_prob(d), weak.solve_prob(d)) << d;
  }
  // Distortion hurts the weak attacker drastically.
  EXPECT_LT(weak.solve_prob(0.8), 0.5 * weak.solve_prob(0.0));
  // Near-human attackers barely degrade: the arms-race point.
  EXPECT_GT(strong.solve_prob(0.8), 0.4);
}

TEST(OcrAttacker, AttemptRateMatchesSolveProb) {
  CaptchaService service(bytes_of("seed"));
  OcrAttacker attacker(0.6, SimRng(42));
  int correct = 0;
  const int kTrials = 3000;
  double expected = 0.0;
  for (int i = 0; i < kTrials; ++i) {
    const auto ch = service.issue(0.5);
    expected = attacker.solve_prob(0.5);
    if (service.verify(ch.id, attacker.attempt(ch)).ok()) ++correct;
  }
  EXPECT_NEAR(correct / static_cast<double>(kTrials), expected, 0.04);
}

TEST(OcrAttacker, FailedAttemptIsWrongNotEmpty) {
  OcrAttacker attacker(0.0, SimRng(7));  // never recognizes
  CaptchaService service(bytes_of("seed"));
  const auto ch = service.issue(0.0);
  const std::string guess = attacker.attempt(ch);
  EXPECT_FALSE(guess.empty());
  EXPECT_NE(guess, ch.embedded_text);
}

}  // namespace
}  // namespace tp::captcha
