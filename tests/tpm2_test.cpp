// TPM 2.0 / ECC backend suites (`ctest -L tpm2`).
//
// Layered like the subsystem itself: P-256 curve known answers (FIPS
// 186-4 / RFC 6979 A.2.5 vectors), ECDSA sign/verify with fixed and
// deterministic nonces, differential fuzz of the cached verifier
// against the uncached reference, then the tpm2 device, quote format,
// and mixed-fleet end-to-end coverage.

#include <gtest/gtest.h>

#include "core/messages.h"
#include "crypto/drbg.h"
#include "crypto/ecdsa.h"
#include "crypto/p256.h"
#include "crypto/sha256.h"
#include "pal/human_agent.h"
#include "sp/fleet.h"
#include "tpm/chip_profile.h"
#include "tpm/privacy_ca.h"
#include "tpm/tpm2_device.h"

namespace tp {
namespace {

namespace p256 = crypto::p256;

// RFC 6979 A.2.5: P-256 key used for all SHA-256 signing vectors.
constexpr const char* kRfcD =
    "c9afa9d845ba75166b5c215767b1d6934e50c3db36e89b127b8a622b120f6721";
constexpr const char* kRfcUx =
    "60fed4ba255a9d31c961eb74c6356d68c049b8923b61fa6ce669622e60f29fb6";
constexpr const char* kRfcUy =
    "7903fe1008b8bc99a41ae9e95628bc64f2f1b20c2d7e9f5177a3c294d4462299";

// message = "sample", SHA-256
constexpr const char* kSampleK =
    "a6e3c57dd01abe90086538398355dd4c3b17aa873382b0f24d6129493d8aad60";
constexpr const char* kSampleR =
    "efd48b2aacb6a8fd1140dd9cd45e81d69d2c877b56aaf991c34d0ea84eaf3716";
constexpr const char* kSampleS =
    "f7cb1c942d657c41d436c7a1b6e29f65f3e900dbb9aff4064dc4ab2f843acda8";

// message = "test", SHA-256
constexpr const char* kTestK =
    "d16b6ae827f17175e040871a1c7ec3500192c4c92677336ec2537acaee0008e0";
constexpr const char* kTestR =
    "f1abb023518351cd71d881567b1ea663ed3efcf6c5132b354f28d3b0b7d38367";
constexpr const char* kTestS =
    "019f4113742a2b14bd25926b49c649155f267e60d3814b4c0cc84250e46f0083";

crypto::EcdsaPrivateKey rfc_key() {
  crypto::EcdsaPrivateKey key;
  key.d = from_hex(kRfcD);
  key.public_half.x = from_hex(kRfcUx);
  key.public_half.y = from_hex(kRfcUy);
  return key;
}

crypto::EcdsaPrivateKey random_key(crypto::HmacDrbg& rng) {
  return crypto::ecdsa_generate(
      [&rng](std::size_t n) { return rng.generate(n); });
}

// ---- P-256 curve known answers ----------------------------------------

TEST(P256KnownAnswer, GeneratorScalarMulMatchesRfcKey) {
  const p256::U256 d = p256::from_bytes_be(from_hex(kRfcD));
  const p256::AffinePoint q = p256::scalar_mul(p256::generator(), d);
  ASSERT_FALSE(q.infinity);
  EXPECT_EQ(to_hex(p256::to_bytes_be(q.x)), kRfcUx);
  EXPECT_EQ(to_hex(p256::to_bytes_be(q.y)), kRfcUy);
}

TEST(P256KnownAnswer, TablePathAgreesWithReferenceForBasePoint) {
  const p256::U256 d = p256::from_bytes_be(from_hex(kRfcD));
  const p256::AffinePoint q = p256::scalar_mul_base(d);
  ASSERT_FALSE(q.infinity);
  EXPECT_EQ(to_hex(p256::to_bytes_be(q.x)), kRfcUx);
  EXPECT_EQ(to_hex(p256::to_bytes_be(q.y)), kRfcUy);
}

TEST(P256KnownAnswer, OrderTimesGeneratorIsInfinity) {
  const p256::AffinePoint q =
      p256::scalar_mul(p256::generator(), p256::order_n());
  EXPECT_TRUE(q.infinity);
  const p256::AffinePoint qt = p256::scalar_mul_base(p256::order_n());
  EXPECT_TRUE(qt.infinity);
}

TEST(P256, GeneratorIsOnCurveAndPerturbationsAreNot) {
  EXPECT_TRUE(p256::on_curve(p256::generator()));

  p256::AffinePoint off = p256::generator();
  off.y.w[0] ^= 1;  // y -> y ^ 1 leaves the curve
  EXPECT_FALSE(p256::on_curve(off));

  p256::AffinePoint big = p256::generator();
  big.x = p256::prime_p();  // coordinate >= p is malformed
  EXPECT_FALSE(p256::on_curve(big));

  EXPECT_FALSE(p256::on_curve(p256::AffinePoint{}));  // infinity
}

TEST(P256, AdditionIdentities) {
  const p256::AffinePoint& g = p256::generator();
  const p256::AffinePoint inf;

  // G + 0 = G
  const p256::AffinePoint sum = p256::point_add(g, inf);
  EXPECT_EQ(sum.x, g.x);
  EXPECT_EQ(sum.y, g.y);
  EXPECT_FALSE(sum.infinity);

  // G + (-G) = 0, where -G = (n-1)G has the same x and negated y.
  p256::U256 n_minus_1 = p256::order_n();
  n_minus_1.w[0] -= 1;  // n is odd; no borrow
  const p256::AffinePoint negated = p256::scalar_mul(g, n_minus_1);
  ASSERT_TRUE(p256::on_curve(negated));
  EXPECT_EQ(negated.x, g.x);
  EXPECT_TRUE(p256::point_add(g, negated).infinity);

  // G + G = 2G = scalar_mul(G, 2)
  p256::U256 two{};
  two.w[0] = 2;
  const p256::AffinePoint dbl = p256::scalar_mul(g, two);
  const p256::AffinePoint added = p256::point_add(g, g);
  EXPECT_EQ(added.x, dbl.x);
  EXPECT_EQ(added.y, dbl.y);
}

TEST(P256, WindowTableMatchesReferenceOnRandomPoints) {
  crypto::HmacDrbg rng(bytes_of("tpm2-test:table"));
  for (int i = 0; i < 4; ++i) {
    const crypto::EcdsaPrivateKey key = random_key(rng);
    p256::AffinePoint q;
    q.x = p256::from_bytes_be(key.public_half.x);
    q.y = p256::from_bytes_be(key.public_half.y);
    q.infinity = false;
    ASSERT_TRUE(p256::on_curve(q));
    const p256::WindowTable table(q);
    for (int j = 0; j < 4; ++j) {
      const p256::U256 k =
          p256::reduce_mod_n(p256::from_bytes_be(rng.generate(32)));
      const p256::AffinePoint ref = p256::scalar_mul(q, k);
      const p256::AffinePoint fast = p256::table_scalar_mul(table, k);
      EXPECT_EQ(ref.infinity, fast.infinity);
      EXPECT_EQ(ref.x, fast.x);
      EXPECT_EQ(ref.y, fast.y);
    }
  }
}

// ---- ECDSA known answers ----------------------------------------------

TEST(EcdsaKnownAnswer, FixedNonceSampleVector) {
  const crypto::EcdsaPrivateKey key = rfc_key();
  const Bytes digest = crypto::Sha256::hash(bytes_of("sample"));
  auto sig = crypto::ecdsa_sign_digest_with_k(key, digest, from_hex(kSampleK));
  ASSERT_TRUE(sig.ok()) << sig.error().to_string();
  EXPECT_EQ(to_hex(sig.value()), std::string(kSampleR) + kSampleS);
}

TEST(EcdsaKnownAnswer, FixedNonceTestVector) {
  const crypto::EcdsaPrivateKey key = rfc_key();
  const Bytes digest = crypto::Sha256::hash(bytes_of("test"));
  auto sig = crypto::ecdsa_sign_digest_with_k(key, digest, from_hex(kTestK));
  ASSERT_TRUE(sig.ok()) << sig.error().to_string();
  EXPECT_EQ(to_hex(sig.value()), std::string(kTestR) + kTestS);
}

TEST(EcdsaKnownAnswer, DeterministicNonceReproducesRfc6979) {
  // Full RFC 6979 pipeline: our SP 800-90A HMAC-DRBG seeded with
  // int2octets(d) || bits2octets(H(m)) must yield the RFC's k, hence
  // the RFC's exact signature.
  const crypto::EcdsaPrivateKey key = rfc_key();
  EXPECT_EQ(to_hex(crypto::ecdsa_sign(key, bytes_of("sample"))),
            std::string(kSampleR) + kSampleS);
  EXPECT_EQ(to_hex(crypto::ecdsa_sign(key, bytes_of("test"))),
            std::string(kTestR) + kTestS);
}

TEST(EcdsaKnownAnswer, VerifyAcceptsVectorAndRejectsPerturbations) {
  const crypto::EcdsaPrivateKey key = rfc_key();
  const Bytes sig = from_hex(std::string(kSampleR) + kSampleS);
  EXPECT_TRUE(crypto::ecdsa_verify(key.public_key(), bytes_of("sample"), sig)
                  .ok());
  EXPECT_EQ(crypto::ecdsa_verify(key.public_key(), bytes_of("Sample"), sig)
                .code(),
            Err::kAuthFail);
  Bytes bad = sig;
  bad[10] ^= 0x40;
  EXPECT_EQ(
      crypto::ecdsa_verify(key.public_key(), bytes_of("sample"), bad).code(),
      Err::kAuthFail);
}

TEST(Ecdsa, SignIsDeterministicPerMessage) {
  crypto::HmacDrbg rng(bytes_of("tpm2-test:det"));
  const crypto::EcdsaPrivateKey key = random_key(rng);
  const Bytes m1 = bytes_of("transaction 1");
  const Bytes m2 = bytes_of("transaction 2");
  EXPECT_EQ(crypto::ecdsa_sign(key, m1), crypto::ecdsa_sign(key, m1));
  EXPECT_NE(crypto::ecdsa_sign(key, m1), crypto::ecdsa_sign(key, m2));
}

TEST(Ecdsa, DegenerateInputsRejected) {
  const crypto::EcdsaPrivateKey key = rfc_key();
  const crypto::EcdsaPublicKey pub = key.public_key();
  const Bytes msg = bytes_of("sample");

  // Structurally bad signatures.
  EXPECT_EQ(crypto::ecdsa_verify(pub, msg, Bytes()).code(), Err::kAuthFail);
  EXPECT_EQ(crypto::ecdsa_verify(pub, msg, Bytes(63, 0xab)).code(),
            Err::kAuthFail);
  EXPECT_EQ(crypto::ecdsa_verify(pub, msg, Bytes(64, 0x00)).code(),
            Err::kAuthFail);  // r = s = 0
  Bytes r_is_n = concat(p256::to_bytes_be(p256::order_n()),
                        from_hex(kSampleS));
  EXPECT_EQ(crypto::ecdsa_verify(pub, msg, r_is_n).code(), Err::kAuthFail);

  // Public keys that are not curve points.
  crypto::EcdsaPublicKey off = pub;
  off.y[31] ^= 1;
  EXPECT_EQ(crypto::ecdsa_verify(
                off, msg, from_hex(std::string(kSampleR) + kSampleS))
                .code(),
            Err::kAuthFail);
  crypto::EcdsaPublicKey short_key = pub;
  short_key.x.pop_back();
  EXPECT_EQ(crypto::ecdsa_verify(
                short_key, msg, from_hex(std::string(kSampleR) + kSampleS))
                .code(),
            Err::kAuthFail);

  // The cached context contains the same rejections.
  const crypto::EcdsaVerifyContext bad_ctx(off);
  EXPECT_FALSE(bad_ctx.valid());
  EXPECT_EQ(bad_ctx.verify(msg, from_hex(std::string(kSampleR) + kSampleS))
                .code(),
            Err::kAuthFail);

  // Nonce k out of range for the fixed-k signer.
  const Bytes digest = crypto::Sha256::hash(msg);
  EXPECT_FALSE(
      crypto::ecdsa_sign_digest_with_k(key, digest, Bytes(32, 0x00)).ok());
  EXPECT_FALSE(crypto::ecdsa_sign_digest_with_k(
                   key, digest, p256::to_bytes_be(p256::order_n()))
                   .ok());
}

TEST(Ecdsa, ContextVerdictMatchesUncachedVerify) {
  // Differential fuzz: the table-walk verifier and the double-and-add
  // reference must agree on genuine signatures and on random
  // single-byte corruptions of the signature or message.
  crypto::HmacDrbg rng(bytes_of("tpm2-test:diff"));
  for (int ki = 0; ki < 6; ++ki) {
    const crypto::EcdsaPrivateKey key = random_key(rng);
    const crypto::EcdsaVerifyContext ctx(key.public_key());
    ASSERT_TRUE(ctx.valid());
    for (int mi = 0; mi < 6; ++mi) {
      const Bytes msg = rng.generate(48);
      const Bytes sig = crypto::ecdsa_sign(key, msg);
      EXPECT_TRUE(ctx.verify(msg, sig).ok());
      EXPECT_TRUE(crypto::ecdsa_verify(key.public_key(), msg, sig).ok());

      Bytes mut_sig = sig;
      const Bytes pick = rng.generate(2);
      mut_sig[pick[0] % mut_sig.size()] ^= static_cast<std::uint8_t>(
          pick[1] ? pick[1] : 1);
      EXPECT_EQ(ctx.verify(msg, mut_sig).code(),
                crypto::ecdsa_verify(key.public_key(), msg, mut_sig).code());

      Bytes mut_msg = msg;
      mut_msg[pick[1] % mut_msg.size()] ^= 0x80;
      EXPECT_EQ(ctx.verify(mut_msg, sig).code(),
                crypto::ecdsa_verify(key.public_key(), mut_msg, sig).code());
    }
  }
}

TEST(P256, VartimeInversionMatchesFermat) {
  // The verifier's divstep-based inversion against the Fermat ladder:
  // structurally unrelated algorithms that must agree everywhere,
  // including at the boundary values where divstep sign handling and the
  // final range normalization are easiest to get wrong.
  p256::U256 n_minus_1 = p256::order_n();
  n_minus_1.w[0] -= 1;  // n is odd; no borrow
  p256::U256 n_minus_2 = p256::order_n();
  n_minus_2.w[0] -= 2;
  p256::U256 one{};
  one.w[0] = 1;
  p256::U256 two{};
  two.w[0] = 2;
  p256::U256 high_bit{};
  high_bit.w[3] = 1ull << 63;
  for (const p256::U256& v : {one, two, n_minus_1, n_minus_2, high_bit}) {
    EXPECT_EQ(p256::inv_mod_n_vartime(v), p256::inv_mod_n(v));
  }
  EXPECT_TRUE(p256::inv_mod_n_vartime(p256::U256{}).is_zero());

  crypto::HmacDrbg rng(bytes_of("tpm2-test:inv"));
  for (int i = 0; i < 500; ++i) {
    const p256::U256 v =
        p256::reduce_mod_n(p256::from_bytes_be(rng.generate(32)));
    if (v.is_zero()) continue;
    const p256::U256 inv = p256::inv_mod_n_vartime(v);
    EXPECT_EQ(inv, p256::inv_mod_n(v));
    EXPECT_EQ(p256::mul_mod_n(v, inv), one);
  }
}

// ---- SHA-256 PCR bank --------------------------------------------------

TEST(PcrBankSha256, PowerOnStateAndRegisterWidth) {
  tpm::PcrBank bank(crypto::HashAlg::kSha256);
  EXPECT_EQ(bank.digest_size(), tpm::kPcrSizeSha256);
  EXPECT_EQ(bank.read(0).value(), Bytes(tpm::kPcrSizeSha256, 0x00));
  EXPECT_EQ(bank.read(17).value(), Bytes(tpm::kPcrSizeSha256, 0xff));
  EXPECT_EQ(bank.read(23).value(), Bytes(tpm::kPcrSizeSha256, 0x00));
}

TEST(PcrBankSha256, ExtendIsSha256HashChain) {
  tpm::PcrBank bank(crypto::HashAlg::kSha256);
  const Bytes d = crypto::Sha256::hash(bytes_of("measurement"));
  const Bytes v1 = bank.extend(0, d).value();
  EXPECT_EQ(v1,
            crypto::Sha256::hash(concat(Bytes(tpm::kPcrSizeSha256, 0x00), d)));
  const Bytes v2 = bank.extend(0, d).value();
  EXPECT_EQ(v2, crypto::Sha256::hash(concat(v1, d)));
}

TEST(PcrBankSha256, CrossBankWidthsAreRejected) {
  // A SHA-1 value cannot be extended into a SHA-256 bank or vice versa:
  // the register width is part of the bank's type, not a caller choice.
  tpm::PcrBank sha256_bank(crypto::HashAlg::kSha256);
  EXPECT_FALSE(sha256_bank.extend(0, Bytes(tpm::kPcrSize, 0xaa)).ok());
  tpm::PcrBank sha1_bank;
  EXPECT_FALSE(sha1_bank.extend(0, Bytes(tpm::kPcrSizeSha256, 0xaa)).ok());
  // Same rule for verifier-side composites over explicit values.
  EXPECT_FALSE(tpm::PcrBank::composite_of(tpm::PcrSelection::of({17}),
                                          {Bytes(tpm::kPcrSize, 0)},
                                          crypto::HashAlg::kSha256)
                   .ok());
}

// ---- TPM 2.0 device ----------------------------------------------------

class Tpm2DeviceTest : public ::testing::Test {
 protected:
  Tpm2DeviceTest()
      : tpm_(tpm::default_chip(), bytes_of("tpm2-test-seed"), clock_) {}

  SimClock clock_;
  tpm::Tpm2Device tpm_;
};

TEST_F(Tpm2DeviceTest, QuoteVerifiesAndBindsNonceAndSigner) {
  const auto selection = tpm::PcrSelection::drtm();
  const Bytes nonce = bytes_of("sp-freshness-nonce");
  auto quote = tpm_.quote(nonce, selection);
  ASSERT_TRUE(quote.ok()) << quote.error().message;

  EXPECT_TRUE(
      tpm::verify_tpm2_quote(tpm_.ak_public(), quote.value(), nonce).ok());
  // Stale nonce: replayed quotes are refused.
  EXPECT_FALSE(
      tpm::verify_tpm2_quote(tpm_.ak_public(), quote.value(), bytes_of("old"))
          .ok());
  // Foreign AK: signer binding, not just signature validity.
  SimClock other_clock;
  tpm::Tpm2Device other(tpm::default_chip(), bytes_of("other-seed"),
                        other_clock);
  EXPECT_FALSE(
      tpm::verify_tpm2_quote(other.ak_public(), quote.value(), nonce).ok());

  // The quoted digest is what the live bank says.
  std::vector<Bytes> values;
  for (const std::uint32_t idx : selection.indices) {
    values.push_back(tpm_.pcr_read(idx).value());
  }
  EXPECT_EQ(quote.value().pcr_digest, tpm::tpm2_pcr_digest(values).value());
}

TEST_F(Tpm2DeviceTest, TamperedQuoteFieldsFailVerification) {
  const Bytes nonce = bytes_of("nonce");
  auto quote = tpm_.quote(nonce, tpm::PcrSelection::drtm());
  ASSERT_TRUE(quote.ok());

  tpm::Tpm2Quote forged = quote.value();
  forged.pcr_digest[0] ^= 1;  // claim a different PCR state
  EXPECT_FALSE(tpm::verify_tpm2_quote(tpm_.ak_public(), forged, nonce).ok());

  forged = quote.value();
  forged.clock_info.reset_count += 1;  // hide a reboot
  EXPECT_FALSE(tpm::verify_tpm2_quote(tpm_.ak_public(), forged, nonce).ok());

  forged = quote.value();
  forged.signature[10] ^= 0x40;
  EXPECT_FALSE(tpm::verify_tpm2_quote(tpm_.ak_public(), forged, nonce).ok());
}

TEST_F(Tpm2DeviceTest, QuoteSerializationRoundTripsAndEnforcesMagic) {
  auto quote = tpm_.quote(bytes_of("n"), tpm::PcrSelection::drtm());
  ASSERT_TRUE(quote.ok());
  const Bytes wire = quote.value().serialize();
  auto back = tpm::Tpm2Quote::deserialize(wire);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().serialize(), wire);
  EXPECT_EQ(back.value().pcr_digest, quote.value().pcr_digest);
  EXPECT_EQ(back.value().clock_info.clock_us,
            quote.value().clock_info.clock_us);

  // The attest magic is load-bearing: a blob of another attest kind must
  // not parse as a quote.
  Bytes wrong_magic = wire;
  wrong_magic[0] ^= 1;
  EXPECT_FALSE(tpm::Tpm2Quote::deserialize(wrong_magic).ok());
  EXPECT_FALSE(tpm::Tpm2Quote::deserialize(BytesView(wire).subspan(1)).ok());
}

TEST_F(Tpm2DeviceTest, SealBindsPcrStateLocalityAndIntegrity) {
  const auto selection = tpm::PcrSelection::of({16});
  auto blob = tpm_.seal(tpm::Locality::kPal, selection, 1 << 2,
                        bytes_of("pal secret"));
  ASSERT_TRUE(blob.ok()) << blob.error().message;

  // Wrong locality: policy says locality 2 only.
  auto at_os = tpm_.unseal(tpm::Locality::kOs, blob.value());
  ASSERT_FALSE(at_os.ok());

  auto out = tpm_.unseal(tpm::Locality::kPal, blob.value());
  ASSERT_TRUE(out.ok()) << out.error().message;
  EXPECT_EQ(out.value(), bytes_of("pal secret"));

  // Tampered ciphertext: kAuthFail (integrity), not kPcrMismatch.
  Bytes mangled = blob.value();
  mangled[mangled.size() / 2] ^= 1;
  auto tampered = tpm_.unseal(tpm::Locality::kPal, mangled);
  ASSERT_FALSE(tampered.ok());
  EXPECT_EQ(tampered.code(), Err::kAuthFail);

  // Drifted PCR state: kPcrMismatch (policy), not kAuthFail.
  ASSERT_TRUE(
      tpm_.pcr_extend(tpm::Locality::kPal, 16,
                      crypto::Sha256::hash(bytes_of("drift")))
          .ok());
  auto drifted = tpm_.unseal(tpm::Locality::kPal, blob.value());
  ASSERT_FALSE(drifted.ok());
  EXPECT_EQ(drifted.code(), Err::kPcrMismatch);
}

TEST_F(Tpm2DeviceTest, SealToFuturePcrStateUnsealsOnlyThere) {
  // The enrollment PAL pre-seals for the confirmation PAL: sealed to PCR
  // values that do not exist yet, releasable only once the bank reaches
  // them.
  const auto selection = tpm::PcrSelection::of({16});
  const Bytes d = crypto::Sha256::hash(bytes_of("next-pal"));
  const Bytes future =
      crypto::Sha256::hash(concat(Bytes(tpm::kPcrSizeSha256, 0x00), d));
  auto blob = tpm_.seal_to(tpm::Locality::kPal, selection, {future}, 0xff,
                           bytes_of("handoff"));
  ASSERT_TRUE(blob.ok()) << blob.error().message;

  auto early = tpm_.unseal(tpm::Locality::kPal, blob.value());
  ASSERT_FALSE(early.ok());
  EXPECT_EQ(early.code(), Err::kPcrMismatch);

  ASSERT_TRUE(tpm_.pcr_extend(tpm::Locality::kPal, 16, d).ok());
  auto late = tpm_.unseal(tpm::Locality::kPal, blob.value());
  ASSERT_TRUE(late.ok()) << late.error().message;
  EXPECT_EQ(late.value(), bytes_of("handoff"));
}

// ---- format-tagged certificates and messages ---------------------------

TEST(AkCertificate, RoundTripsAndVerifiesForBothFormats) {
  const tpm::PrivacyCa ca(bytes_of("tpm2-test-ca"), 1024);
  SimClock clock;
  tpm::Tpm2Device dev(tpm::default_chip(), bytes_of("cert-dev"), clock);

  const tpm::AkCertificate ecc =
      ca.certify_key("platform-ecc", tpm::AttestationKey::of(dev.ak_public()));
  auto parsed = tpm::AkCertificate::deserialize(ecc.serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().platform_id, "platform-ecc");
  EXPECT_EQ(parsed.value().key.format, tpm::QuoteFormat::kTpm2);
  EXPECT_EQ(parsed.value().key, ecc.key);
  EXPECT_TRUE(tpm::PrivacyCa::verify_key(ca.public_key(), parsed.value()).ok());

  // The RSA form rides the same tagged container.
  crypto::HmacDrbg rsa_rng(bytes_of("cert-rsa"));
  const crypto::RsaPrivateKey rsa = crypto::rsa_generate(
      768, [&rsa_rng](std::size_t n) { return rsa_rng.generate(n); });
  const tpm::AkCertificate aik = ca.certify_key(
      "platform-rsa", tpm::AttestationKey::of(rsa.public_key()));
  EXPECT_EQ(aik.key.format, tpm::QuoteFormat::kTpm12);
  EXPECT_TRUE(tpm::PrivacyCa::verify_key(ca.public_key(), aik).ok());
}

TEST(AkCertificate, TamperedFieldsFailVerification) {
  const tpm::PrivacyCa ca(bytes_of("tpm2-test-ca2"), 1024);
  SimClock clock;
  tpm::Tpm2Device dev(tpm::default_chip(), bytes_of("cert-dev2"), clock);
  const tpm::AkCertificate cert =
      ca.certify_key("victim", tpm::AttestationKey::of(dev.ak_public()));

  tpm::AkCertificate forged = cert;
  forged.platform_id = "attacker";  // rebind the key to another platform
  EXPECT_FALSE(tpm::PrivacyCa::verify_key(ca.public_key(), forged).ok());

  forged = cert;
  forged.ca_signature[8] ^= 1;
  EXPECT_FALSE(tpm::PrivacyCa::verify_key(ca.public_key(), forged).ok());

  // A certificate from one CA does not verify against another's root.
  const tpm::PrivacyCa other(bytes_of("rogue-ca"), 1024);
  EXPECT_FALSE(tpm::PrivacyCa::verify_key(other.public_key(), cert).ok());
}

TEST(QuoteFormatWire, EnrollCompleteTagRoundTripsAndRejectsUnknown) {
  core::EnrollComplete msg;
  msg.client_id = "mixed-client";
  msg.confirmation_pubkey = bytes_of("pubkey");
  msg.quote = bytes_of("quote");
  msg.aik_certificate = bytes_of("cert");
  msg.format = tpm::QuoteFormat::kTpm2;

  const Bytes wire = msg.serialize();
  auto back = core::EnrollComplete::deserialize(wire);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().format, tpm::QuoteFormat::kTpm2);
  EXPECT_EQ(back.value().confirmation_pubkey, msg.confirmation_pubkey);

  // Locate the tag byte by diffing the two known serializations, then
  // patch in an undefined tag: parse must refuse it (append-only enum;
  // forward compatibility is explicit rejection).
  core::EnrollComplete legacy = msg;
  legacy.format = tpm::QuoteFormat::kTpm12;
  const Bytes legacy_wire = legacy.serialize();
  ASSERT_EQ(wire.size(), legacy_wire.size());
  std::size_t tag_at = wire.size();
  for (std::size_t i = 0; i < wire.size(); ++i) {
    if (wire[i] != legacy_wire[i]) {
      ASSERT_EQ(tag_at, wire.size()) << "tag must be the only differing byte";
      tag_at = i;
    }
  }
  ASSERT_LT(tag_at, wire.size());
  Bytes unknown = wire;
  unknown[tag_at] = 0x7f;
  EXPECT_FALSE(core::EnrollComplete::deserialize(unknown).ok());

  EXPECT_FALSE(tpm::quote_format_from_wire(0).has_value());
  EXPECT_FALSE(tpm::quote_format_from_wire(3).has_value());
  EXPECT_EQ(tpm::quote_format_from_wire(1), tpm::QuoteFormat::kTpm12);
  EXPECT_EQ(tpm::quote_format_from_wire(2), tpm::QuoteFormat::kTpm2);
}

// ---- mixed-fleet end-to-end --------------------------------------------

TEST(MixedFleet, BothBackendsEnrollAndConfirmAgainstOneSp) {
  sp::FleetConfig cfg;
  cfg.num_clients = 4;
  cfg.seed = bytes_of("tpm2-test:mixed-fleet");
  cfg.tpm_key_bits = 1024;
  cfg.client_key_bits = 1024;
  cfg.backend_mix = {tpm::QuoteFormat::kTpm12, tpm::QuoteFormat::kTpm2};
  sp::Fleet fleet(cfg);

  // Round-robin assignment: even members 1.2, odd members 2.0.
  EXPECT_EQ(fleet.backend(0), tpm::QuoteFormat::kTpm12);
  EXPECT_EQ(fleet.backend(1), tpm::QuoteFormat::kTpm2);
  EXPECT_EQ(fleet.backend(2), tpm::QuoteFormat::kTpm12);
  EXPECT_EQ(fleet.backend(3), tpm::QuoteFormat::kTpm2);

  ASSERT_EQ(fleet.enroll_all(), 4u);

  devices::HumanParams perfect;
  perfect.typo_prob = 0.0;
  perfect.attention = 1.0;
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    pal::HumanAgent agent(devices::HumanModel(perfect, SimRng(100 + i)), "");
    fleet.client(i).set_user_agent(&agent);
    for (int t = 0; t < 2; ++t) {
      const std::string summary =
          "pay " + std::to_string(t) + " by " + fleet.client_id(i);
      agent.set_intended_summary(summary);
      auto outcome = fleet.client(i).submit_transaction(summary, {});
      ASSERT_TRUE(outcome.ok()) << outcome.error().message;
      EXPECT_TRUE(outcome.value().accepted)
          << fleet.client_id(i) << " tx " << t;
    }
  }

  // Per-backend accounting: slices attribute every event and sum to the
  // totals -- the SP dispatched on the enrollment's format tag.
  const sp::SpStats stats = fleet.sp().stats();
  EXPECT_EQ(stats.enrolled, 4u);
  EXPECT_EQ(stats.enrolled_format(tpm::QuoteFormat::kTpm12), 2u);
  EXPECT_EQ(stats.enrolled_format(tpm::QuoteFormat::kTpm2), 2u);
  EXPECT_EQ(stats.tx_accepted, 8u);
  EXPECT_EQ(stats.tx_accepted_format(tpm::QuoteFormat::kTpm12), 4u);
  EXPECT_EQ(stats.tx_accepted_format(tpm::QuoteFormat::kTpm2), 4u);
  EXPECT_EQ(stats.tx_rejected, 0u);

  // The slices surface in the obs registry for scrapes, not only in the
  // stats snapshot.
  const std::string json = fleet.sp().metrics().to_json();
  EXPECT_NE(json.find("sp.enrolled.tpm12"), std::string::npos);
  EXPECT_NE(json.find("sp.enrolled.tpm2"), std::string::npos);
  EXPECT_NE(json.find("sp.tx_accepted.tpm12"), std::string::npos);
  EXPECT_NE(json.find("sp.tx_accepted.tpm2"), std::string::npos);
}

}  // namespace
}  // namespace tp
