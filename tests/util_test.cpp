// Unit tests for the util substrate: bytes/hex, serialization, Result,
// deterministic RNG, virtual clock.
#include <gtest/gtest.h>

#include "util/bytes.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/serial.h"
#include "util/sim_clock.h"

namespace tp {
namespace {

TEST(Bytes, HexRoundTrip) {
  const Bytes data = {0x00, 0x01, 0xab, 0xff, 0x7f};
  EXPECT_EQ(to_hex(data), "0001abff7f");
  EXPECT_EQ(from_hex("0001abff7f"), data);
  EXPECT_EQ(from_hex("0001ABFF7F"), data);
}

TEST(Bytes, HexEmpty) {
  EXPECT_EQ(to_hex({}), "");
  EXPECT_TRUE(from_hex("").empty());
}

TEST(Bytes, HexRejectsOddLength) {
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);
}

TEST(Bytes, HexRejectsNonHex) {
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);
}

TEST(Bytes, StringConversions) {
  EXPECT_EQ(string_of(bytes_of("hello")), "hello");
  EXPECT_EQ(bytes_of("").size(), 0u);
}

TEST(Bytes, Concat) {
  const Bytes a = {1, 2}, b = {3}, c = {4, 5};
  EXPECT_EQ(concat(a, b), (Bytes{1, 2, 3}));
  EXPECT_EQ(concat(a, b, c), (Bytes{1, 2, 3, 4, 5}));
}

TEST(Bytes, CtEqual) {
  EXPECT_TRUE(ct_equal(Bytes{1, 2, 3}, Bytes{1, 2, 3}));
  EXPECT_FALSE(ct_equal(Bytes{1, 2, 3}, Bytes{1, 2, 4}));
  EXPECT_FALSE(ct_equal(Bytes{1, 2}, Bytes{1, 2, 3}));
  EXPECT_TRUE(ct_equal(Bytes{}, Bytes{}));
}

TEST(Bytes, SecureWipe) {
  Bytes secret = {1, 2, 3, 4};
  secure_wipe(secret);
  EXPECT_EQ(secret, (Bytes{0, 0, 0, 0}));
}

TEST(Result, ValueAccess) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.code(), Err::kNone);
}

TEST(Result, ErrorAccess) {
  Result<int> r(Err::kAuthFail, "bad signature");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code(), Err::kAuthFail);
  EXPECT_EQ(r.error().message, "bad signature");
  EXPECT_THROW(r.value(), std::logic_error);
}

TEST(Result, ValueOnErrorThrows) {
  Result<int> ok(7);
  EXPECT_THROW(ok.error(), std::logic_error);
}

TEST(Status, OkAndError) {
  Status ok;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.to_string(), "ok");
  Status bad(Err::kReplay, "seen before");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.code(), Err::kReplay);
}

TEST(Status, ErrNames) {
  EXPECT_STREQ(err_name(Err::kPcrMismatch), "pcr_mismatch");
  EXPECT_STREQ(err_name(Err::kIsolationViolation), "isolation_violation");
}

TEST(Serial, RoundTripAllTypes) {
  BinaryWriter w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefull);
  w.var_bytes(Bytes{9, 8, 7});
  w.var_string("trusted path");
  w.raw(Bytes{0xff});

  BinaryReader r(w.data());
  EXPECT_EQ(r.u8().value(), 0xab);
  EXPECT_EQ(r.u16().value(), 0x1234);
  EXPECT_EQ(r.u32().value(), 0xdeadbeefu);
  EXPECT_EQ(r.u64().value(), 0x0123456789abcdefull);
  EXPECT_EQ(r.var_bytes().value(), (Bytes{9, 8, 7}));
  EXPECT_EQ(r.var_string().value(), "trusted path");
  EXPECT_EQ(r.raw(1).value(), (Bytes{0xff}));
  EXPECT_TRUE(r.expect_exhausted().ok());
}

TEST(Serial, BigEndianLayout) {
  BinaryWriter w;
  w.u32(0x01020304);
  EXPECT_EQ(w.data(), (Bytes{1, 2, 3, 4}));
}

TEST(Serial, TruncationDetected) {
  BinaryReader r(Bytes{0x01});
  EXPECT_FALSE(r.u32().ok());
  EXPECT_EQ(r.u32().code(), Err::kInvalidArgument);
}

TEST(Serial, VarBytesLengthBound) {
  BinaryWriter w;
  w.u32(1u << 30);  // absurd length claim
  BinaryReader r(w.data());
  EXPECT_FALSE(r.var_bytes().ok());
}

TEST(Serial, TrailingBytesDetected) {
  BinaryWriter w;
  w.u8(1);
  w.u8(2);
  BinaryReader r(w.data());
  EXPECT_TRUE(r.u8().ok());
  EXPECT_FALSE(r.expect_exhausted().ok());
}

TEST(SimRng, Deterministic) {
  SimRng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(SimRng, DifferentSeedsDiffer) {
  SimRng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(SimRng, NextBelowInRange) {
  SimRng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
  EXPECT_THROW(rng.next_below(0), std::invalid_argument);
}

TEST(SimRng, DoubleInUnitInterval) {
  SimRng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(SimRng, ChanceExtremes) {
  SimRng rng(3);
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_TRUE(rng.chance(1.0));
}

TEST(SimRng, ChanceFrequency) {
  SimRng rng(11);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(SimRng, ExponentialMean) {
  SimRng rng(13);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) sum += rng.next_exponential(5.0);
  EXPECT_NEAR(sum / 20000.0, 5.0, 0.3);
}

TEST(SimRng, NormalMeanAndClamp) {
  SimRng rng(17);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    const double v = rng.next_normal(10.0, 2.0, 0.0);
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 20000.0, 10.0, 0.2);
}

TEST(SimRng, BytesLengthAndDeterminism) {
  SimRng a(21), b(21);
  EXPECT_EQ(a.next_bytes(33).size(), 33u);
  EXPECT_EQ(b.next_bytes(33), SimRng(21).next_bytes(33));
}

TEST(SimRng, ForkDecorrelates) {
  SimRng parent(5);
  SimRng c1 = parent.fork(1);
  SimRng parent2(5);
  SimRng c2 = parent2.fork(2);
  EXPECT_NE(c1.next_u64(), c2.next_u64());
}

TEST(SimClock, AdvanceAndCharge) {
  SimClock clock;
  EXPECT_EQ(clock.now().ns, 0);
  clock.advance(SimDuration::millis(5));
  EXPECT_EQ(clock.now().ns, 5'000'000);
  clock.charge("tpm_quote", SimDuration::millis(300));
  EXPECT_EQ(clock.now().ns, 305'000'000);
  ASSERT_EQ(clock.spans().size(), 1u);
  EXPECT_EQ(clock.spans()[0].label, "tpm_quote");
  EXPECT_EQ(clock.spans()[0].start.ns, 5'000'000);
}

TEST(SimClock, NegativeAdvanceRejected) {
  SimClock clock;
  EXPECT_THROW(clock.advance(SimDuration{-1}), std::invalid_argument);
}

TEST(SimClock, TotalForAggregates) {
  SimClock clock;
  clock.charge("a", SimDuration::millis(10));
  clock.charge("b", SimDuration::millis(5));
  clock.charge("a", SimDuration::millis(7));
  EXPECT_EQ(clock.total_for("a").ns, 17'000'000);
  EXPECT_EQ(clock.total_for("b").ns, 5'000'000);
  EXPECT_EQ(clock.total_for("missing").ns, 0);
}

TEST(SimDuration, ConversionsAndArithmetic) {
  EXPECT_EQ(SimDuration::seconds(1.5).ns, 1'500'000'000);
  EXPECT_DOUBLE_EQ(SimDuration::millis(250).to_seconds(), 0.25);
  EXPECT_EQ((SimDuration::millis(2) + SimDuration::micros(500)).ns,
            2'500'000);
  EXPECT_LT(SimDuration::millis(1), SimDuration::millis(2));
}

}  // namespace
}  // namespace tp
