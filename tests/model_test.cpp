// Model-checker suite (`ctest -L model`): exhaustive bounded-depth
// exploration of the protocol core under a Dolev-Yao attacker.
//
// The explorer drives the SAME pure decision functions the deployed
// ServiceProvider and client execute (proto/sp_core.h,
// proto/client_core.h) against a symbolic world where the network is
// the attacker. The suite asserts four things:
//   - the clean protocol is safe on EVERY interleaving the bounds
//     reach (exactly-once, no forged confirm, no unattested enroll);
//   - each defence layer failing ALONE is still safe -- the one-shot
//     challenge and the signature replay cache each cover for the
//     other (defence in depth, proved rather than asserted);
//   - seeded bugs are found, with minimal counterexample traces;
//   - a counterexample projects onto a net::FaultScript and replays
//     against the real client/SP/link stack, which (unbugged) absorbs
//     the attack -- closing the loop between model and implementation.
#include <gtest/gtest.h>

#include <cstdint>
#include <iostream>

#include "model/checker.h"
#include "model/trace.h"
#include "net/fault.h"
#include "pal/human_agent.h"
#include "sp/deployment.h"
#include "sp/service_provider.h"

namespace tp {
namespace {

using model::ActionKind;
using model::CheckerConfig;
using model::CheckResult;
using model::Invariant;

std::string first_trace(const CheckResult& result) {
  if (result.violations.empty()) return "(no violations)";
  return std::string(model::invariant_name(result.violations.front().invariant)) +
         " violated by:\n" +
         model::format_trace(result.violations.front().trace);
}

// ------------------------------------------------------------ clean model

TEST(ModelChecker, CleanProtocolSafeOnEveryInterleaving) {
  CheckerConfig cfg;
  cfg.max_depth = 24;
  cfg.max_states = 0;  // the space to depth 24 is ~116k states: take it all
  const CheckResult result = model::check(cfg);
  EXPECT_TRUE(result.violations.empty()) << first_trace(result);
  // The acceptance bar for the exploration itself: deep enough to cover
  // a full enrollment plus a full confirmation plus attacker moves, and
  // broad enough that the dedup is doing real work. EVERY state within
  // the depth bound is visited (frontier exhausted), so this is a proof
  // up to depth 24, not a sample.
  EXPECT_TRUE(result.frontier_exhausted);
  EXPECT_GE(result.max_depth_reached, 10);
  EXPECT_GE(result.states, 100000u);
  std::cout << "[model] states=" << result.states
            << " transitions=" << result.transitions
            << " depth=" << result.max_depth_reached
            << " exhaustive=" << (result.frontier_exhausted ? "yes" : "no")
            << " fingerprint=0x" << std::hex << result.fingerprint << std::dec
            << std::endl;
}

TEST(ModelChecker, ExplorationIsDeterministic) {
  CheckerConfig cfg;
  cfg.max_depth = 9;
  cfg.max_states = 0;  // small enough depth to run unbounded
  const CheckResult a = model::check(cfg);
  const CheckResult b = model::check(cfg);
  EXPECT_EQ(a.states, b.states);
  EXPECT_EQ(a.transitions, b.transitions);
  EXPECT_EQ(a.max_depth_reached, b.max_depth_reached);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
}

// -------------------------------------------------------- defence in depth

TEST(ModelChecker, OneShotChallengeAloneStopsReplay) {
  // Replay cache disabled: the one-shot session (a challenge leaves
  // kChallengeSent on settle) must still make double-settlement
  // unreachable on every interleaving.
  CheckerConfig cfg;
  cfg.max_depth = 16;
  cfg.max_states = 0;
  cfg.bugs.skip_replay_screen = true;
  const CheckResult result = model::check(cfg);
  EXPECT_TRUE(result.violations.empty()) << first_trace(result);
  EXPECT_TRUE(result.frontier_exhausted);
  EXPECT_GE(result.max_depth_reached, 11);
}

TEST(ModelChecker, ReplayCacheAloneStopsReplay) {
  // Settle's state write dropped (sessions never leave kChallengeSent):
  // the signature replay cache must still refuse the second settlement.
  CheckerConfig cfg;
  cfg.max_depth = 16;
  cfg.max_states = 0;
  cfg.bugs.drop_settle_apply = true;
  const CheckResult result = model::check(cfg);
  EXPECT_TRUE(result.violations.empty()) << first_trace(result);
  EXPECT_TRUE(result.frontier_exhausted);
  EXPECT_GE(result.max_depth_reached, 11);
}

// ------------------------------------------------------------- seeded bugs

TEST(ModelChecker, SkippedVerificationFoundWithMinimalTrace) {
  // Crypto port rubber-stamps everything: the attacker enrolls with
  // garbage evidence. BFS guarantees the counterexample is minimal --
  // craft nothing but one begin and one garbage complete.
  CheckerConfig cfg;
  cfg.max_depth = 6;
  cfg.max_states = 200000;
  cfg.bugs.skip_crypto_verify = true;
  const CheckResult result = model::check(cfg);
  ASSERT_FALSE(result.violations.empty());
  const model::Violation& v = result.violations.front();
  EXPECT_EQ(v.invariant, Invariant::kNoUnattestedEnroll);
  ASSERT_EQ(v.trace.size(), 2u) << model::format_trace(v.trace);
  EXPECT_EQ(v.trace[0].kind, ActionKind::kDeliverToSp);
  EXPECT_EQ(v.trace[0].frame, model::kFrameEnrollBegin);
  EXPECT_EQ(v.trace[1].kind, ActionKind::kDeliverToSp);
  EXPECT_EQ(v.trace[1].frame, model::kFrameEnrollCompleteGarbage);
  std::cout << "[model] skip-verify counterexample:\n"
            << model::format_trace(v.trace);
}

TEST(ModelChecker, DoubleSettleNeedsBothLayersDown) {
  // Both layers off at once -- the state write dropped AND the replay
  // cache skipped -- and the duplicated confirm settles twice. The
  // minimal trace is the full honest handshake (9 steps) plus the
  // confirm delivered twice.
  CheckerConfig cfg;
  cfg.max_depth = 12;
  cfg.max_states = 600000;
  cfg.bugs.drop_settle_apply = true;
  cfg.bugs.skip_replay_screen = true;
  const CheckResult result = model::check(cfg);
  ASSERT_FALSE(result.violations.empty());
  const model::Violation& v = result.violations.front();
  EXPECT_EQ(v.invariant, Invariant::kTxExactlyOnce) << first_trace(result);
  ASSERT_EQ(v.trace.size(), 11u) << model::format_trace(v.trace);
  // The last two moves deliver the same TxConfirm frame twice.
  const model::Action& last = v.trace.back();
  const model::Action& prev = v.trace[v.trace.size() - 2];
  EXPECT_EQ(last.kind, ActionKind::kDeliverToSp);
  EXPECT_EQ(prev.kind, ActionKind::kDeliverToSp);
  EXPECT_EQ(last.frame, prev.frame);
  EXPECT_EQ(model::canonical_send_index(last.frame), 6);
  std::cout << "[model] double-settle counterexample:\n"
            << model::format_trace(v.trace);
}

// ------------------------------------------------- replay on the real stack

devices::HumanParams perfect_human() {
  devices::HumanParams p;
  p.typo_prob = 0.0;
  p.attention = 1.0;
  return p;
}

TEST(ModelChecker, CounterexampleReplaysAgainstRealStack) {
  // Project the double-settle counterexample onto a deterministic fault
  // script and replay it through the real client/SP/link. The deployed
  // stack has both layers intact, so the attack must be absorbed: the
  // duplicate is answered from the response cache and the accept is
  // counted exactly once.
  CheckerConfig cfg;
  cfg.max_depth = 12;
  cfg.max_states = 600000;
  cfg.bugs.drop_settle_apply = true;
  cfg.bugs.skip_replay_screen = true;
  const CheckResult result = model::check(cfg);
  ASSERT_FALSE(result.violations.empty());

  const model::FaultScriptMapping mapping =
      model::trace_to_fault_script(result.violations.front().trace);
  EXPECT_TRUE(mapping.exact);
  ASSERT_EQ(mapping.script.forced.size(), 1u);
  EXPECT_EQ(mapping.script.forced[0].send_index, 6u);  // the TxConfirm send
  EXPECT_EQ(mapping.script.forced[0].kind,
            static_cast<std::uint8_t>(net::FaultKind::kDuplicate));

  sp::DeploymentConfig world_cfg;
  world_cfg.client_id = "model-replay";
  world_cfg.seed = bytes_of("model-replay");
  world_cfg.tpm_key_bits = 768;
  world_cfg.client_key_bits = 768;
  world_cfg.net.fault.script = mapping.script;
  sp::Deployment world(world_cfg);
  pal::HumanAgent agent(devices::HumanModel(perfect_human(), SimRng(21)), "");
  world.client().set_user_agent(&agent);

  ASSERT_TRUE(world.client().enroll().ok());
  const std::string summary = "pay 42 EUR";
  agent.set_intended_summary(summary);
  auto outcome = world.client().submit_transaction(summary, bytes_of("body"));
  ASSERT_TRUE(outcome.ok()) << outcome.error().message;
  EXPECT_TRUE(outcome.value().accepted);
  // The scripted duplicate fired.
  EXPECT_EQ(world.link().faults()->injected(net::FaultKind::kDuplicate), 1u);
  EXPECT_EQ(world.sp().stats().tx_accepted, 1u);
  // A second transaction advances virtual time past the duplicate's
  // delivery, forcing the SP to face the replayed confirm -- which the
  // terminal-hold response cache answers without settling again.
  agent.set_intended_summary("pay 7 EUR");
  auto second = world.client().submit_transaction("pay 7 EUR", bytes_of("b2"));
  ASSERT_TRUE(second.ok()) << second.error().message;
  EXPECT_TRUE(second.value().accepted);
  EXPECT_EQ(world.sp().stats().tx_accepted, 2u);
  EXPECT_GE(world.sp().replayed_results(), 1u);
}

}  // namespace
}  // namespace tp
