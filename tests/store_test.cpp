// Durability suite (`ctest -L crash`): the src/store layer in isolation.
//
// Covers the three store invariants everything above leans on:
//
//   - Framing: CRC32-C framed records round-trip; decode_journal draws
//     the torn-tail (benign) vs corruption (typed error) line exactly --
//     truncating at EVERY offset recovers the whole-record prefix with
//     no corruption report, while bit-flipping EVERY byte of a valid
//     journal stops decode at the damaged record, keeps the intact
//     prefix, and never crashes (the suite runs under ASan/UBSan in CI).
//   - Snapshot: serialize/deserialize round-trips a fully populated
//     ShardState; any single-byte damage is a typed hard error (there
//     is no safe prefix of a snapshot).
//   - Log: DurableLog positions the seq cursor past what it recovered,
//     a torn append does not consume a seq, and the compaction crash
//     window ("snapshot written, journal not yet truncated") replays
//     zero already-covered records.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "store/durable_log.h"
#include "store/file_backend.h"
#include "store/journal.h"
#include "store/shard_state.h"
#include "store/storage_backend.h"
#include "util/bytes.h"
#include "util/serial.h"

namespace tp {
namespace {

using store::CrashInjected;
using store::DedupRow;
using store::DurableLog;
using store::DurableLogConfig;
using store::EnrolledClient;
using store::FileBackend;
using store::JournalDecode;
using store::JournalFault;
using store::JournalRecord;
using store::MemoryBackend;
using store::RecordType;
using store::ReplayDigest;
using store::SessionKey;
using store::ShardState;
using store::ShardStateBuilder;

SessionKey make_key(std::uint8_t tag) {
  SessionKey key{};
  for (std::size_t i = 0; i < key.size(); ++i) {
    key[i] = static_cast<std::uint8_t>(tag + i);
  }
  return key;
}

ReplayDigest make_digest(std::uint8_t tag) {
  ReplayDigest digest{};
  for (std::size_t i = 0; i < digest.size(); ++i) {
    digest[i] = static_cast<std::uint8_t>(tag * 7 + i);
  }
  return digest;
}

proto::SessionTable::Session make_session(proto::SessionState state,
                                          std::int64_t deadline_ns,
                                          std::uint8_t tag) {
  proto::SessionTable::Session session;
  session.state = state;
  session.deadline = SimTime{deadline_ns};
  session.client = make_key(tag);
  session.set_nonce(bytes_of("nonce-" + std::to_string(tag)));
  for (std::size_t i = 0; i < session.tx_digest.size(); ++i) {
    session.tx_digest[i] = static_cast<std::uint8_t>(tag ^ i);
  }
  session.request_digest = make_key(static_cast<std::uint8_t>(tag + 1));
  session.set_response(bytes_of("cached-response-" + std::to_string(tag)));
  return session;
}

ShardState sample_state() {
  ShardState state;
  state.enroll_sessions.push_back(
      {make_key(1), make_session(proto::SessionState::kChallengeSent, 100, 1)});
  state.enroll_sessions.push_back(
      {make_key(2), make_session(proto::SessionState::kDone, 200, 2)});
  state.tx_sessions.push_back(
      {make_key(3), make_session(proto::SessionState::kChallengeSent, 150, 3)});
  state.tx_sessions.push_back(
      {make_key(4), make_session(proto::SessionState::kFailed, 250, 4)});
  state.enrolled.push_back({"client-a", bytes_of("serialized-key-a")});
  state.enrolled.push_back({"client-b", bytes_of("serialized-key-b")});
  state.replay_digests.push_back(make_digest(1));
  state.replay_digests.push_back(make_digest(2));
  state.dedup.push_back({make_key(5), make_key(6), 41});
  state.source_now_ns = 777;
  state.next_tx_id = 42;
  state.tx_accepted_total = 17;
  state.last_seq = 9;
  return state;
}

/// A small journal exercising every record type, as `(encoded, records)`.
struct SampleJournal {
  Bytes bytes;
  std::vector<JournalRecord> records;
};

SampleJournal sample_journal() {
  SampleJournal j;
  const auto add = [&j](std::uint64_t seq, RecordType type, Bytes body) {
    append(j.bytes, store::encode_record(seq, type, body));
    j.records.push_back({seq, type, std::move(body)});
  };
  add(1, RecordType::kEnrollBegin,
      store::enroll_begin_body(
          10, make_key(1),
          make_session(proto::SessionState::kChallengeSent, 100, 1)));
  add(2, RecordType::kEnrollSettle,
      store::enroll_settle_body(
          20, make_key(1), make_session(proto::SessionState::kDone, 100, 1),
          "client-a", bytes_of("serialized-key-a")));
  const DedupRow row{make_key(5), make_key(6), 43};
  add(3, RecordType::kTxBegin,
      store::tx_begin_body(
          30, make_key(3),
          make_session(proto::SessionState::kChallengeSent, 150, 3), 43,
          &row));
  const ReplayDigest digest = make_digest(9);
  add(4, RecordType::kTxSettle,
      store::tx_settle_body(
          40, make_key(3), make_session(proto::SessionState::kDone, 150, 3),
          43, 1, &digest));
  add(5, RecordType::kReplayDigest, store::replay_digest_body(50, make_digest(10)));
  add(6, RecordType::kDedupRow,
      store::dedup_row_body(60, DedupRow{make_key(7), make_key(8), 44}));
  return j;
}

void expect_same_record(const JournalRecord& got, const JournalRecord& want) {
  EXPECT_EQ(got.seq, want.seq);
  EXPECT_EQ(got.type, want.type);
  EXPECT_EQ(got.body, want.body);
}

/// Canonical-bytes equality: the snapshot codec is deterministic, so two
/// states are equal iff their serializations are.
void expect_same_state(const ShardState& got, const ShardState& want) {
  EXPECT_EQ(store::serialize_shard_state(got),
            store::serialize_shard_state(want));
}

// ------------------------------------------------------------------ crc

TEST(Crc32c, KnownAnswer) {
  // The Castagnoli check value from RFC 3720 / the iSCSI test vector.
  const Bytes data = bytes_of("123456789");
  EXPECT_EQ(store::crc32c(data), 0xE3069283u);
  EXPECT_EQ(store::crc32c(BytesView{}), 0u);
}

// -------------------------------------------------------------- framing

TEST(Journal, EncodeDecodeRoundTripsEveryRecordType) {
  const SampleJournal j = sample_journal();
  const JournalDecode decoded = store::decode_journal(j.bytes);
  EXPECT_TRUE(decoded.clean());
  EXPECT_EQ(decoded.valid_bytes, j.bytes.size());
  ASSERT_EQ(decoded.records.size(), j.records.size());
  for (std::size_t i = 0; i < j.records.size(); ++i) {
    expect_same_record(decoded.records[i], j.records[i]);
  }
}

TEST(Journal, TruncatingAtEveryOffsetRecoversTheWholeRecordPrefix) {
  const SampleJournal j = sample_journal();
  // Whole-record boundaries, ascending (0 == empty journal).
  std::vector<std::size_t> boundaries{0};
  for (const JournalRecord& r : j.records) {
    boundaries.push_back(boundaries.back() + 8 + 9 + r.body.size());
  }
  ASSERT_EQ(boundaries.back(), j.bytes.size());

  for (std::size_t cut = 0; cut <= j.bytes.size(); ++cut) {
    const Bytes prefix(j.bytes.begin(),
                       j.bytes.begin() + static_cast<std::ptrdiff_t>(cut));
    const JournalDecode decoded = store::decode_journal(prefix);

    std::size_t whole = 0;
    while (whole < j.records.size() && boundaries[whole + 1] <= cut) ++whole;
    ASSERT_EQ(decoded.records.size(), whole) << "cut at " << cut;
    for (std::size_t i = 0; i < whole; ++i) {
      expect_same_record(decoded.records[i], j.records[i]);
    }
    // Truncation is the benign kind of damage: a torn tail, never a
    // corruption report.
    EXPECT_FALSE(decoded.corruption.has_value()) << "cut at " << cut;
    EXPECT_EQ(decoded.valid_bytes, boundaries[whole]) << "cut at " << cut;
    EXPECT_EQ(decoded.truncated_tail, cut != boundaries[whole])
        << "cut at " << cut;
  }
}

TEST(Journal, BitFlippingEveryByteKeepsTheIntactPrefixAndNeverCrashes) {
  const SampleJournal j = sample_journal();
  std::vector<std::size_t> boundaries{0};
  for (const JournalRecord& r : j.records) {
    boundaries.push_back(boundaries.back() + 8 + 9 + r.body.size());
  }

  for (std::size_t pos = 0; pos < j.bytes.size(); ++pos) {
    Bytes flipped = j.bytes;
    flipped[pos] ^= 0x5a;
    const JournalDecode decoded = store::decode_journal(flipped);

    // The record containing the flipped byte.
    std::size_t damaged = 0;
    while (boundaries[damaged + 1] <= pos) ++damaged;

    // Everything before the damaged record survives verbatim; the
    // damaged record and everything after it is gone (decode stops at
    // the first record it cannot trust).
    ASSERT_GE(decoded.records.size(), damaged) << "flip at " << pos;
    ASSERT_LT(decoded.records.size(), j.records.size()) << "flip at " << pos;
    for (std::size_t i = 0; i < damaged; ++i) {
      expect_same_record(decoded.records[i], j.records[i]);
    }
    // Damage is always reported: either as a typed corruption naming
    // the damaged record, or (a flip that grew the length field) as a
    // torn tail.
    EXPECT_FALSE(decoded.clean()) << "flip at " << pos;
    if (decoded.corruption.has_value()) {
      EXPECT_EQ(decoded.corruption->record_index, damaged)
          << "flip at " << pos;
      EXPECT_EQ(decoded.corruption->byte_offset, boundaries[damaged])
          << "flip at " << pos;
    }
  }
}

TEST(Journal, CorruptionErrorNamesRecordOffsetAndFault) {
  const SampleJournal j = sample_journal();
  std::vector<std::size_t> boundaries{0};
  for (const JournalRecord& r : j.records) {
    boundaries.push_back(boundaries.back() + 8 + 9 + r.body.size());
  }

  // Flip one payload byte of record 2: CRC mismatch, typed and located.
  Bytes bad_crc = j.bytes;
  bad_crc[boundaries[2] + 8 + 9] ^= 0xff;
  const JournalDecode crc = store::decode_journal(bad_crc);
  ASSERT_TRUE(crc.corruption.has_value());
  EXPECT_EQ(crc.corruption->fault, JournalFault::kBadCrc);
  EXPECT_EQ(crc.corruption->record_index, 2u);
  EXPECT_EQ(crc.corruption->byte_offset, boundaries[2]);
  EXPECT_NE(crc.corruption->to_string().find("bad_crc"), std::string::npos);
  EXPECT_EQ(crc.records.size(), 2u);

  // A length field above the 1 MiB bound: kBadLength, not an allocation.
  Bytes bad_len = j.bytes;
  bad_len[boundaries[1]] = 0xff;  // big-endian u32 length, high byte
  const JournalDecode len = store::decode_journal(bad_len);
  ASSERT_TRUE(len.corruption.has_value());
  EXPECT_EQ(len.corruption->fault, JournalFault::kBadLength);
  EXPECT_EQ(len.corruption->record_index, 1u);
  EXPECT_EQ(len.records.size(), 1u);

  const auto frame_payload = [](const Bytes& payload) {
    BinaryWriter frame;
    frame.u32(static_cast<std::uint32_t>(payload.size()));
    frame.u32(store::crc32c(payload));
    frame.raw(payload);
    return frame.take();
  };

  // An unknown type tag with a recomputed (valid) CRC: kBadType.
  BinaryWriter unknown;
  unknown.u64(1);    // seq
  unknown.u8(0x7f);  // no such record type
  unknown.raw(bytes_of("body"));
  const JournalDecode type = store::decode_journal(frame_payload(unknown.take()));
  ASSERT_TRUE(type.corruption.has_value());
  EXPECT_EQ(type.corruption->fault, JournalFault::kBadType);

  // A framed payload too short to hold seq+type: kShortPayload.
  const JournalDecode sp = store::decode_journal(frame_payload(bytes_of("tiny")));
  ASSERT_TRUE(sp.corruption.has_value());
  EXPECT_EQ(sp.corruption->fault, JournalFault::kShortPayload);
}

TEST(Journal, DuplicatedRecordsFoldInOnce) {
  const SampleJournal j = sample_journal();
  Bytes doubled = j.bytes;
  append(doubled, j.bytes);  // every record delivered twice, same seqs
  const JournalDecode decoded = store::decode_journal(doubled);
  EXPECT_TRUE(decoded.clean());
  ASSERT_EQ(decoded.records.size(), j.records.size() * 2);

  ShardStateBuilder once(ShardState{});
  for (const JournalRecord& r : store::decode_journal(j.bytes).records) {
    ASSERT_TRUE(once.apply(r).ok());
  }
  ShardStateBuilder twice(ShardState{});
  for (const JournalRecord& r : decoded.records) {
    ASSERT_TRUE(twice.apply(r).ok());
  }
  // The second pass is seq-skipped wholesale: same applied count, same
  // materialized state.
  EXPECT_EQ(twice.applied(), once.applied());
  EXPECT_EQ(twice.applied(), j.records.size());
  expect_same_state(twice.take(), once.take());
}

TEST(Journal, BuilderRejectsStructurallyInvalidBodies) {
  // A framed, CRC-valid record whose *body* does not parse is the same
  // class of damage as a CRC failure; apply() reports it as a typed
  // error instead of half-applying.
  JournalRecord record;
  record.seq = 1;
  record.type = RecordType::kTxSettle;
  record.body = bytes_of("definitely not a tx_settle body");
  ShardStateBuilder builder(ShardState{});
  const Status status = builder.apply(record);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), Err::kInvalidArgument);
  EXPECT_EQ(builder.applied(), 0u);
}

// ------------------------------------------------------------- snapshot

TEST(ShardStateCodec, RoundTripsAFullyPopulatedState) {
  const ShardState state = sample_state();
  const Bytes blob = store::serialize_shard_state(state);
  auto parsed = store::deserialize_shard_state(blob);
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  const ShardState& got = parsed.value();
  EXPECT_EQ(got.enroll_sessions.size(), state.enroll_sessions.size());
  EXPECT_EQ(got.tx_sessions.size(), state.tx_sessions.size());
  ASSERT_EQ(got.enrolled.size(), 2u);
  EXPECT_EQ(got.enrolled[0].id, "client-a");
  EXPECT_EQ(got.enrolled[1].key_blob, bytes_of("serialized-key-b"));
  EXPECT_EQ(got.replay_digests, state.replay_digests);
  ASSERT_EQ(got.dedup.size(), 1u);
  EXPECT_EQ(got.dedup[0].tx_id, 41u);
  EXPECT_EQ(got.source_now_ns, 777);
  EXPECT_EQ(got.next_tx_id, 42u);
  EXPECT_EQ(got.tx_accepted_total, 17u);
  EXPECT_EQ(got.last_seq, 9u);
  expect_same_state(got, state);
}

TEST(ShardStateCodec, AnySingleByteDamageIsATypedHardError) {
  // Unlike the journal there is no safe prefix of a snapshot: the CRC
  // seal turns every single-byte flip into a typed refusal (CRC32
  // detects all single-bit and single-byte errors), and every
  // truncation into a structural error. Neither may crash.
  const Bytes blob = store::serialize_shard_state(sample_state());
  for (std::size_t pos = 0; pos < blob.size(); ++pos) {
    Bytes damaged = blob;
    damaged[pos] ^= 0x21;
    auto parsed = store::deserialize_shard_state(damaged);
    ASSERT_FALSE(parsed.ok()) << "flip at " << pos;
    EXPECT_TRUE(parsed.error().code == Err::kCryptoError ||
                parsed.error().code == Err::kInvalidArgument)
        << "flip at " << pos << ": " << parsed.error().to_string();
  }
  for (std::size_t cut = 0; cut < blob.size(); ++cut) {
    const Bytes prefix(blob.begin(),
                       blob.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(store::deserialize_shard_state(prefix).ok())
        << "cut at " << cut;
  }
}

// -------------------------------------------------------------- backends

TEST(MemoryBackend, TornWriteCrashInjectionOnTheCumulativeAxis) {
  MemoryBackend backend;
  const Bytes first = bytes_of("first-record----");
  backend.append_journal(first);
  EXPECT_EQ(backend.appended_total(), first.size());

  // Arm the crash 4 bytes into the next record: the append keeps only
  // that prefix (a torn write) and reports the armed offset.
  backend.crash_at_bytes(backend.appended_total() + 4);
  const Bytes second = bytes_of("second-record---");
  try {
    backend.append_journal(second);
    FAIL() << "append across the crash point must throw";
  } catch (const CrashInjected& crash) {
    EXPECT_EQ(crash.offset(), first.size() + 4);
  }
  Bytes expect = first;
  expect.insert(expect.end(), second.begin(), second.begin() + 4);
  EXPECT_EQ(backend.read_journal(), expect);

  // A dead process stays dead: later appends throw too, without
  // persisting anything further.
  EXPECT_THROW(backend.append_journal(second), CrashInjected);
  EXPECT_EQ(backend.read_journal(), expect);

  // The axis is cumulative: reset_journal (compaction) empties the file
  // but not the offset counter, so an armed future point stays valid.
  backend.clear_crash_point();
  backend.reset_journal();
  EXPECT_EQ(backend.journal_bytes(), 0u);
  EXPECT_EQ(backend.appended_total(), first.size() + 4);
  backend.append_journal(first);
  EXPECT_EQ(backend.appended_total(), 2 * first.size() + 4);
}

TEST(FileBackend, PersistsJournalAndSnapshotAcrossReopen) {
  const std::string dir =
      (std::filesystem::current_path() / "store_test_filebackend").string();
  std::filesystem::remove_all(dir);
  const SampleJournal j = sample_journal();
  const Bytes snapshot = store::serialize_shard_state(sample_state());
  {
    FileBackend backend(dir);
    EXPECT_EQ(backend.journal_bytes(), 0u);
    backend.append_journal(j.bytes);
    backend.write_snapshot(snapshot);
    EXPECT_EQ(backend.read_journal(), j.bytes);
    EXPECT_EQ(backend.read_snapshot(), snapshot);
  }
  {
    // A "restarted process": same directory, fresh descriptor. The
    // cumulative-append axis is seeded with the on-disk size so crash
    // points and compaction triggers stay monotone.
    FileBackend backend(dir);
    EXPECT_EQ(backend.read_journal(), j.bytes);
    EXPECT_EQ(backend.read_snapshot(), snapshot);
    EXPECT_EQ(backend.appended_total(), j.bytes.size());

    backend.write_snapshot(bytes_of("replacement"));
    EXPECT_EQ(backend.read_snapshot(), bytes_of("replacement"));
    backend.reset_journal();
    EXPECT_EQ(backend.journal_bytes(), 0u);
    EXPECT_EQ(backend.read_journal(), Bytes{});
  }
  std::filesystem::remove_all(dir);
}

// ------------------------------------------------------------ durable log

TEST(DurableLog, RecoversWhatWasAppendedAndPositionsTheSeqCursor) {
  MemoryBackend backend;
  DurableLogConfig config;
  config.backend = &backend;
  DurableLog writer(config);
  auto empty = writer.recover();
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty.value().empty());
  EXPECT_EQ(writer.next_seq(), 1u);

  writer.append(RecordType::kReplayDigest,
                store::replay_digest_body(10, make_digest(1)));
  writer.append(RecordType::kReplayDigest,
                store::replay_digest_body(20, make_digest(2)));
  writer.append(RecordType::kDedupRow,
                store::dedup_row_body(30, DedupRow{make_key(1), make_key(2), 7}));
  EXPECT_EQ(writer.next_seq(), 4u);

  DurableLog reader(config);
  auto recovered = reader.recover();
  ASSERT_TRUE(recovered.ok());
  const ShardState& state = recovered.value();
  ASSERT_EQ(state.replay_digests.size(), 2u);
  EXPECT_EQ(state.replay_digests[0], make_digest(1));  // FIFO order kept
  EXPECT_EQ(state.replay_digests[1], make_digest(2));
  ASSERT_EQ(state.dedup.size(), 1u);
  EXPECT_EQ(state.source_now_ns, 30);
  EXPECT_EQ(reader.recovery_stats().replayed_records, 3u);
  EXPECT_EQ(reader.recovery_stats().truncated_tail_bytes, 0u);
  EXPECT_FALSE(reader.recovery_stats().had_corruption);
  // The cursor continues the same seq space: a post-recovery append can
  // never collide with a recovered record.
  EXPECT_EQ(reader.next_seq(), 4u);
}

TEST(DurableLog, TornAppendDoesNotConsumeASeq) {
  MemoryBackend backend;
  DurableLogConfig config;
  config.backend = &backend;
  DurableLog log(config);
  ASSERT_TRUE(log.recover().ok());
  log.append(RecordType::kReplayDigest,
             store::replay_digest_body(10, make_digest(1)));

  backend.crash_at_bytes(backend.appended_total() + 5);
  EXPECT_THROW(log.append(RecordType::kReplayDigest,
                          store::replay_digest_body(20, make_digest(2))),
               CrashInjected);
  EXPECT_EQ(log.next_seq(), 2u);  // the torn record's seq was not spent

  // The next incarnation sees record 1 plus a 5-byte torn tail.
  backend.clear_crash_point();
  DurableLog reader(config);
  auto recovered = reader.recover();
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered.value().replay_digests.size(), 1u);
  EXPECT_EQ(reader.recovery_stats().replayed_records, 1u);
  EXPECT_EQ(reader.recovery_stats().truncated_tail_bytes, 5u);
  EXPECT_EQ(reader.next_seq(), 2u);
}

TEST(DurableLog, AppendsAfterATornTailSurviveTheNextRecovery) {
  // Regression: recovery must amputate a torn tail (snapshot + journal
  // reset), because appends land at the journal's END. Leaving the
  // garbage in place would let incarnation 2 write records the decoder
  // can never reach past the damage -- incarnation 3 would then
  // silently lose everything incarnation 2 acked. The cluster
  // crash-chaos run caught exactly this as vanishing settle counts.
  MemoryBackend backend;
  DurableLogConfig config;
  config.backend = &backend;
  DurableLog log(config);
  ASSERT_TRUE(log.recover().ok());
  log.append(RecordType::kReplayDigest,
             store::replay_digest_body(10, make_digest(1)));
  backend.crash_at_bytes(backend.appended_total() + 5);
  EXPECT_THROW(log.append(RecordType::kReplayDigest,
                          store::replay_digest_body(20, make_digest(2))),
               CrashInjected);
  backend.clear_crash_point();

  // Incarnation 2 recovers past the tear and appends two more records.
  DurableLog second(config);
  ASSERT_TRUE(second.recover().ok());
  EXPECT_EQ(backend.read_journal().size(), 0u)  // tail amputated
      << "recovery left a torn tail in the journal";
  second.append(RecordType::kReplayDigest,
                store::replay_digest_body(30, make_digest(3)));
  second.append(RecordType::kReplayDigest,
                store::replay_digest_body(40, make_digest(4)));

  // Incarnation 3 must see everything both predecessors acked.
  DurableLog third(config);
  auto recovered = third.recover();
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered.value().replay_digests.size(), 3u);
  EXPECT_FALSE(third.recovery_stats().had_corruption);
  EXPECT_EQ(third.recovery_stats().truncated_tail_bytes, 0u);
}

TEST(DurableLog, CompactionCrashWindowReplaysNothingTwice) {
  MemoryBackend backend;
  DurableLogConfig config;
  config.backend = &backend;
  DurableLog log(config);
  ASSERT_TRUE(log.recover().ok());
  log.append(RecordType::kReplayDigest,
             store::replay_digest_body(10, make_digest(1)));
  log.append(RecordType::kReplayDigest,
             store::replay_digest_body(20, make_digest(2)));
  const Bytes journal_before = backend.read_journal();

  DurableLog folder(config);
  auto state = folder.recover();
  ASSERT_TRUE(state.ok());
  folder.compact(state.value());
  EXPECT_EQ(backend.journal_bytes(), 0u);

  // Crash window: snapshot written but the journal truncation lost --
  // the next recovery sees BOTH, and the seq fence (snapshot.last_seq)
  // must keep it from folding the covered records in twice.
  backend.set_journal(journal_before);
  DurableLog reader(config);
  auto recovered = reader.recover();
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(reader.recovery_stats().replayed_records, 0u);
  EXPECT_EQ(recovered.value().replay_digests.size(), 2u);
  expect_same_state(recovered.value(), state.value());
  EXPECT_EQ(reader.next_seq(), 3u);
}

TEST(DurableLog, ShouldCompactTracksTheConfiguredJournalBound) {
  MemoryBackend backend;
  DurableLogConfig config;
  config.backend = &backend;
  config.compact_journal_bytes = 64;
  DurableLog log(config);
  ASSERT_TRUE(log.recover().ok());
  EXPECT_FALSE(log.should_compact());
  while (!log.should_compact()) {
    log.append(RecordType::kReplayDigest,
               store::replay_digest_body(10, make_digest(3)));
  }
  EXPECT_GE(backend.journal_bytes(), 64u);
  log.compact(ShardState{});
  EXPECT_FALSE(log.should_compact());

  // A corrupt snapshot is a hard typed error -- recovery must refuse,
  // not guess.
  Bytes snapshot = backend.read_snapshot();
  ASSERT_FALSE(snapshot.empty());
  snapshot[snapshot.size() / 2] ^= 0x01;
  backend.write_snapshot(snapshot);
  DurableLog reader(config);
  auto recovered = reader.recover();
  ASSERT_FALSE(recovered.ok());
  EXPECT_NE(recovered.error().message.find("snapshot"), std::string::npos);
}

TEST(DurableLog, ShouldCompactWaitsForTheJournalToOutgrowTheSnapshot) {
  // Ratio rule: once a snapshot exists, the configured byte floor alone
  // must not trigger compaction -- the journal has to reach the
  // snapshot's size too, or every compaction writes more than it
  // reclaims. Build a state whose snapshot dwarfs the 64-byte floor,
  // then watch the trigger move.
  MemoryBackend backend;
  DurableLogConfig config;
  config.backend = &backend;
  config.compact_journal_bytes = 64;
  DurableLog log(config);
  ASSERT_TRUE(log.recover().ok());
  ShardState bulky;
  for (std::uint8_t i = 0; i < 32; ++i) {
    bulky.replay_digests.push_back(make_digest(i));
  }
  log.compact(bulky);
  const std::uint64_t snapshot_bytes = backend.read_snapshot().size();
  ASSERT_GT(snapshot_bytes, 64u);

  while (backend.journal_bytes() < snapshot_bytes) {
    EXPECT_FALSE(log.should_compact());
    log.append(RecordType::kReplayDigest,
               store::replay_digest_body(10, make_digest(7)));
  }
  EXPECT_TRUE(log.should_compact());

  // A recovering log learns the snapshot size the same way.
  DurableLog reader(config);
  ASSERT_TRUE(reader.recover().ok());
  EXPECT_TRUE(reader.should_compact());
  reader.compact(ShardState{});
  EXPECT_FALSE(reader.should_compact());
}

}  // namespace
}  // namespace tp
