// Mutation-fuzz robustness tests.
//
// Every byte the verifying side consumes arrives from an attacker in the
// threat model, so the decoders and verifiers must (a) never crash and
// (b) never upgrade a mutated artifact into an accepted one. These tests
// run deterministic mutation campaigns: take a valid artifact, flip
// random bytes/truncate/extend, and assert the invariant.
#include <gtest/gtest.h>

#include <iterator>
#include <list>
#include <unordered_map>

#include "core/trusted_path_pal.h"
#include "pal/human_agent.h"
#include "proto/session_table.h"
#include "sp/deployment.h"
#include "store/journal.h"
#include "store/shard_state.h"
#include "tpm/quote.h"
#include "util/rng.h"

namespace tp {
namespace {

constexpr int kMutationsPerArtifact = 400;

// Applies one random mutation: flip, truncate, extend, or splice.
Bytes mutate(const Bytes& input, SimRng& rng) {
  Bytes out = input;
  switch (rng.next_below(4)) {
    case 0: {  // bit flip(s)
      if (out.empty()) break;
      const std::size_t flips = 1 + rng.next_below(3);
      for (std::size_t i = 0; i < flips; ++i) {
        out[rng.next_below(out.size())] ^=
            static_cast<std::uint8_t>(1u << rng.next_below(8));
      }
      break;
    }
    case 1: {  // truncate
      if (out.empty()) break;
      out.resize(rng.next_below(out.size()));
      break;
    }
    case 2: {  // extend with junk
      const Bytes junk = rng.next_bytes(1 + rng.next_below(16));
      append(out, junk);
      break;
    }
    case 3: {  // overwrite a window with junk
      if (out.empty()) break;
      const std::size_t start = rng.next_below(out.size());
      const std::size_t len =
          std::min(out.size() - start, 1 + rng.next_below(8));
      const Bytes junk = rng.next_bytes(len);
      std::copy(junk.begin(), junk.end(),
                out.begin() + static_cast<std::ptrdiff_t>(start));
      break;
    }
  }
  return out;
}

TEST(Fuzz, MessageDecodersNeverCrash) {
  SimRng rng(101);
  const core::TxSubmit submit{"client", "pay 10 EUR", Bytes(32, 7)};
  const core::EnrollComplete enroll{"client", Bytes(64, 1), Bytes(128, 2),
                                    Bytes(96, 3)};
  const std::vector<Bytes> corpus = {
      submit.serialize(),
      enroll.serialize(),
      core::TxChallenge{42, Bytes(20, 9)}.serialize(),
      core::TxConfirm{"client", 42, core::Verdict::kConfirmed, Bytes(96, 4)}
          .serialize(),
      core::TxResult{42, true, "ok"}.serialize(),
      core::EnrollChallenge{Bytes(20, 5)}.serialize(),
      core::EnrollResult{false, "nope"}.serialize(),
      core::EnrollBegin{"client"}.serialize(),
  };
  for (const Bytes& seed : corpus) {
    for (int i = 0; i < kMutationsPerArtifact; ++i) {
      const Bytes mutated = mutate(seed, rng);
      // Every decoder must handle every mutation without UB; outcomes
      // are irrelevant, absence of crash/sanitizer-trap is the assertion.
      (void)core::TxSubmit::deserialize(mutated);
      (void)core::TxChallenge::deserialize(mutated);
      (void)core::TxConfirm::deserialize(mutated);
      (void)core::TxResult::deserialize(mutated);
      (void)core::EnrollBegin::deserialize(mutated);
      (void)core::EnrollChallenge::deserialize(mutated);
      (void)core::EnrollComplete::deserialize(mutated);
      (void)core::EnrollResult::deserialize(mutated);
      (void)core::open_envelope(mutated);
    }
  }
}

TEST(Fuzz, SpHandlesArbitraryFramesWithoutCrashing) {
  sp::DeploymentConfig cfg;
  cfg.client_id = "fuzz";
  cfg.seed = bytes_of("fuzz-sp");
  cfg.tpm_key_bits = 768;
  cfg.client_key_bits = 768;
  sp::Deployment world(cfg);
  SimRng rng(202);

  for (int i = 0; i < 2000; ++i) {
    const Bytes frame = rng.next_bytes(rng.next_below(200));
    const Bytes response = world.sp().handle_frame(frame);
    EXPECT_FALSE(response.empty());  // the server always answers
  }
  EXPECT_EQ(world.sp().stats().tx_accepted, 0u);
}

TEST(Fuzz, MutatedQuotesNeverVerify) {
  SimClock clock;
  tpm::TpmDevice tpm(tpm::default_chip(), bytes_of("fuzz-quote"), clock,
                     tpm::TpmDevice::Options{.key_bits = 768});
  const Bytes nonce(20, 0x11);
  auto quote = tpm.quote(nonce, tpm::PcrSelection::of({17}));
  ASSERT_TRUE(quote.ok());
  const Bytes valid = quote.value().serialize();
  ASSERT_TRUE(tpm::verify_quote(
                  tpm.aik_public(),
                  tpm::QuoteResult::deserialize(valid).value(), nonce)
                  .ok());

  SimRng rng(303);
  int parsed = 0;
  for (int i = 0; i < kMutationsPerArtifact; ++i) {
    const Bytes mutated = mutate(valid, rng);
    if (mutated == valid) continue;
    auto decoded = tpm::QuoteResult::deserialize(mutated);
    if (!decoded.ok()) continue;
    ++parsed;
    // Even when the mutation survives parsing, verification must fail.
    EXPECT_FALSE(
        tpm::verify_quote(tpm.aik_public(), decoded.value(), nonce).ok())
        << "mutation " << i << " verified!";
  }
  // Sanity: the campaign actually exercised the verify path.
  EXPECT_GT(parsed, 0);
}

TEST(Fuzz, MutatedSealedBlobsNeverUnseal) {
  SimClock clock;
  tpm::TpmDevice tpm(tpm::default_chip(), bytes_of("fuzz-seal"), clock,
                     tpm::TpmDevice::Options{.key_bits = 768});
  auto blob = tpm.seal(tpm::Locality::kOs, tpm::PcrSelection::of({10}),
                       0xff, bytes_of("the confirmation key"));
  ASSERT_TRUE(blob.ok());

  SimRng rng(404);
  for (int i = 0; i < kMutationsPerArtifact; ++i) {
    const Bytes mutated = mutate(blob.value(), rng);
    if (mutated == blob.value()) continue;
    auto out = tpm.unseal(tpm::Locality::kOs, mutated);
    EXPECT_FALSE(out.ok()) << "mutation " << i << " unsealed!";
  }
}

TEST(Fuzz, MutatedConfirmationsNeverAccepted) {
  // Full-protocol campaign: mutate a VALID TxConfirm wire message and
  // replay it against the SP; nothing mutated may be accepted.
  sp::DeploymentConfig cfg;
  cfg.client_id = "victim";
  cfg.seed = bytes_of("fuzz-confirm");
  cfg.tpm_key_bits = 768;
  cfg.client_key_bits = 768;
  sp::Deployment world(cfg);

  devices::HumanParams hp;
  hp.typo_prob = 0.0;
  pal::HumanAgent agent(devices::HumanModel(hp, SimRng(5)), "pay 1");
  world.client().set_user_agent(&agent);
  ASSERT_TRUE(world.client().enroll().ok());

  // Mints a fresh (challenge, genuine confirmation) pair as wire bytes.
  pal::SessionDriver driver(world.platform());
  driver.set_user_agent(&agent);
  auto mint_frame = [&]() -> Bytes {
    core::TxSubmit submit{"victim", "pay 1", bytes_of("p")};
    const auto challenge = world.sp().begin_transaction(submit);
    core::PalConfirmInput in;
    in.tx_summary = "pay 1";
    in.tx_digest = submit.digest();
    in.nonce = challenge.nonce;
    in.sealed_key = world.client().sealed_key_blob();
    auto session = driver.run(core::make_trusted_path_pal(), in.marshal());
    auto pal_out = core::PalConfirmOutput::unmarshal(session.value().output);
    core::TxConfirm confirm{"victim", challenge.tx_id,
                            core::Verdict::kConfirmed,
                            pal_out.value().signature};
    return core::envelope(core::MsgType::kTxConfirm, confirm.serialize());
  };

  const Bytes valid_frame = mint_frame();
  SimRng rng(505);
  for (int i = 0; i < kMutationsPerArtifact; ++i) {
    const Bytes mutated = mutate(valid_frame, rng);
    if (mutated == valid_frame) continue;
    (void)world.sp().handle_frame(mutated);
  }
  // No mutation got a transaction executed. (A mutated frame that still
  // parses MAY legitimately consume the pending challenge -- that is the
  // one-shot design working -- but it must never be accepted.)
  EXPECT_EQ(world.sp().stats().tx_accepted, 0u);

  // A freshly minted genuine confirmation still goes through.
  const Bytes response = world.sp().handle_frame(mint_frame());
  auto opened = core::open_envelope(response);
  ASSERT_TRUE(opened.ok());
  auto result = core::TxResult::deserialize(opened.value().second);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().accepted);
  EXPECT_EQ(world.sp().stats().tx_accepted, 1u);
}

TEST(Fuzz, RandomEventSequencesKeepTheSessionFsmConsistent) {
  // Random walk over the protocol state machine: whatever order events
  // arrive in, every step must stay inside the declared domain and obey
  // the structural invariants (kVerify only from a live challenge,
  // settling events always land in a terminal state, terminal states are
  // only left through kBegin).
  SimRng rng(707);
  for (const auto phase :
       {proto::SessionPhase::kEnroll, proto::SessionPhase::kConfirm}) {
    proto::Session session(phase);
    for (int i = 0; i < 20000; ++i) {
      const auto before = session.state();
      const auto event = static_cast<proto::SessionEvent>(
          rng.next_below(proto::kSessionEventCount));
      const proto::Step step = session.apply(event);

      ASSERT_LT(static_cast<std::size_t>(session.state()),
                proto::kSessionStateCount);
      ASSERT_TRUE(proto::reject_code_valid(
          static_cast<std::uint8_t>(step.reject)));
      if (step.action == proto::SessionAction::kVerify) {
        ASSERT_EQ(before, proto::SessionState::kChallengeSent);
        ASSERT_EQ(session.state(), proto::SessionState::kChallengeSent);
      }
      if (event == proto::SessionEvent::kBegin) {
        ASSERT_EQ(session.state(), proto::SessionState::kChallengeSent);
      } else if (proto::session_state_terminal(before)) {
        ASSERT_EQ(session.state(), before);  // settled stays settled
      }
      if (event == proto::SessionEvent::kVerifyOk &&
          before == proto::SessionState::kChallengeSent) {
        ASSERT_EQ(session.state(), proto::SessionState::kDone);
      }
      if (event == proto::SessionEvent::kVerifyFail &&
          before == proto::SessionState::kChallengeSent) {
        ASSERT_EQ(session.state(), proto::SessionState::kFailed);
      }
    }
  }
}

TEST(Fuzz, SessionTableMatchesReferenceModelUnderRandomOps) {
  // Differential fuzz: drive the open-addressing session table and a
  // dead-simple reference model (list for LRU order + map for lookup)
  // with the same random begin/find/erase/clock-advance sequence; any
  // slot leak, phantom session, or order bug shows up as divergence.
  constexpr std::size_t kCapacity = 16;
  constexpr std::int64_t kTtlNs = 1000;
  proto::SessionTable table(
      {.capacity = kCapacity, .ttl = SimDuration{kTtlNs}});
  const std::size_t memory = table.memory_bytes();

  std::list<std::uint64_t> order;  // front = least recently begun
  std::unordered_map<std::uint64_t,
                     std::pair<std::int64_t, std::list<std::uint64_t>::iterator>>
      model;  // id -> (deadline, position in `order`)
  std::uint64_t model_evictions = 0;
  std::uint64_t model_expirations = 0;
  const auto model_drop = [&](std::uint64_t id) {
    auto it = model.find(id);
    order.erase(it->second.second);
    model.erase(it);
  };
  const auto model_collect = [&](std::int64_t now) {
    while (!order.empty() && model.at(order.front()).first < now) {
      model.erase(order.front());
      order.pop_front();
      ++model_expirations;
    }
  };

  SimRng rng(808);
  std::int64_t now = 0;
  for (int op = 0; op < 50000; ++op) {
    const std::uint64_t id = rng.next_below(64);  // 4x capacity: pressure
    const auto key = proto::SessionTable::tx_key(id);
    switch (rng.next_below(8)) {
      case 0:  // advance the clock (sometimes past whole TTL windows)
        now += static_cast<std::int64_t>(rng.next_below(
            static_cast<std::size_t>(kTtlNs / 2)));
        break;
      case 1: case 2: {  // erase
        table.erase(key);
        if (model.count(id)) model_drop(id);
        break;
      }
      case 3: case 4: case 5: {  // find
        bool expired = false;
        proto::SessionTable::Session* got =
            table.find(key, SimTime{now}, &expired);
        const auto it = model.find(id);
        if (it == model.end()) {
          ASSERT_EQ(got, nullptr) << "op " << op;
          ASSERT_FALSE(expired);
        } else if (it->second.first < now) {
          ASSERT_EQ(got, nullptr) << "op " << op;
          ASSERT_TRUE(expired);
          model_drop(id);
          ++model_expirations;
        } else {
          ASSERT_NE(got, nullptr) << "op " << op;
          ASSERT_FALSE(expired);
        }
        break;
      }
      default: {  // begin
        table.begin(key, SimTime{now});
        model_collect(now);
        if (auto it = model.find(id); it != model.end()) {
          order.erase(it->second.second);  // recycle: refresh order
          model.erase(it);
        } else if (model.size() == kCapacity) {
          model.erase(order.front());
          order.pop_front();
          ++model_evictions;
        }
        order.push_back(id);
        model.emplace(id,
                      std::make_pair(now + kTtlNs, std::prev(order.end())));
        break;
      }
    }
    ASSERT_EQ(table.size(), model.size()) << "op " << op;
    ASSERT_EQ(table.evictions(), model_evictions) << "op " << op;
    ASSERT_EQ(table.expirations(), model_expirations) << "op " << op;
    ASSERT_EQ(table.memory_bytes(), memory) << "op " << op;
  }

  // Full membership audit + drain: every modelled session is findable,
  // nothing else is, and erasing them all leaves zero slots -- no leaks.
  for (std::uint64_t id = 0; id < 64; ++id) {
    proto::SessionTable::Session* got =
        table.find(proto::SessionTable::tx_key(id), SimTime{now});
    ASSERT_EQ(got != nullptr, model.count(id) == 1) << "id " << id;
  }
  for (std::uint64_t id = 0; id < 64; ++id) {
    table.erase(proto::SessionTable::tx_key(id));
  }
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.memory_bytes(), memory);
}

// A small but type-complete journal: one record of every kind, the same
// shape the SP writes in production.
Bytes sample_wal() {
  using store::RecordType;
  proto::SessionTable::Session session;
  session.state = proto::SessionState::kChallengeSent;
  session.deadline = SimTime{5'000};
  session.set_nonce(Bytes(20, 0xab));
  const auto key = proto::SessionTable::tx_key(42);
  store::ReplayDigest digest{};
  digest.fill(0x5c);
  const store::DedupRow row{proto::SessionTable::client_key("fuzz"),
                            proto::SessionTable::payload_key(bytes_of("p")),
                            42};
  Bytes wal;
  std::uint64_t seq = 1;
  append(wal, store::encode_record(
                  seq++, RecordType::kEnrollBegin,
                  store::enroll_begin_body(100, key, session)));
  append(wal, store::encode_record(
                  seq++, RecordType::kEnrollSettle,
                  store::enroll_settle_body(200, key, session, "fuzz",
                                            bytes_of("key-blob"))));
  append(wal, store::encode_record(
                  seq++, RecordType::kTxBegin,
                  store::tx_begin_body(300, key, session, 43, &row)));
  append(wal, store::encode_record(
                  seq++, RecordType::kTxSettle,
                  store::tx_settle_body(400, key, session, 43, 1, &digest)));
  append(wal, store::encode_record(
                  seq++, RecordType::kReplayDigest,
                  store::replay_digest_body(500, digest)));
  append(wal, store::encode_record(seq++, RecordType::kDedupRow,
                                   store::dedup_row_body(600, row)));
  return wal;
}

TEST(Fuzz, JournalDecoderNeverCrashesAndNeverOverreads) {
  // The journal is the one artifact the verifier reads back from disk
  // after a crash, so its decoder faces whatever a dying disk left
  // behind. Mutate a valid journal every way the harness knows, plus
  // pure junk: decode must never trap under ASan/UBSan, must report
  // consumed bytes consistently, and on corruption must name a record
  // inside the buffer.
  const Bytes valid = sample_wal();
  ASSERT_TRUE(store::decode_journal(valid).clean());
  ASSERT_EQ(store::decode_journal(valid).records.size(), 6u);

  SimRng rng(909);
  for (int i = 0; i < 2 * kMutationsPerArtifact; ++i) {
    const Bytes mutated = mutate(valid, rng);
    const store::JournalDecode decoded = store::decode_journal(mutated);
    EXPECT_LE(decoded.valid_bytes, mutated.size());
    EXPECT_LE(decoded.records.size(), mutated.size() / 8 + 1);
    if (decoded.corruption.has_value()) {
      EXPECT_LE(decoded.corruption->byte_offset, mutated.size());
      EXPECT_EQ(decoded.corruption->record_index, decoded.records.size());
      EXPECT_FALSE(decoded.corruption->to_string().empty());
    }
    // Whatever survived framing must also be safe to fold into a state:
    // body parse failures are typed errors, never UB.
    store::ShardStateBuilder builder{store::ShardState{}};
    for (const store::JournalRecord& record : decoded.records) {
      (void)builder.apply(record);
    }
    (void)builder.take();
  }
  for (int i = 0; i < kMutationsPerArtifact; ++i) {
    (void)store::decode_journal(rng.next_bytes(rng.next_below(512)));
  }
}

TEST(Fuzz, MutatedSnapshotsFailClosed) {
  // The snapshot is the other half of recovery. A damaged snapshot must
  // come back as a typed error (recovery refuses to start) -- never a
  // crash, and never a silently different state.
  store::ShardState state;
  state.source_now_ns = 1234;
  state.next_tx_id = 99;
  state.tx_accepted_total = 7;
  state.replay_digests.emplace_back();
  state.replay_digests.back().fill(0x11);
  state.enrolled.push_back({"fuzz-client", bytes_of("key-blob")});
  const Bytes valid = store::serialize_shard_state(state);
  ASSERT_TRUE(store::deserialize_shard_state(valid).ok());

  SimRng rng(1010);
  for (int i = 0; i < 2 * kMutationsPerArtifact; ++i) {
    const Bytes mutated = mutate(valid, rng);
    if (mutated == valid) continue;
    auto decoded = store::deserialize_shard_state(mutated);
    if (decoded.ok()) {
      // The whole-blob CRC makes accidental acceptance of a mutation
      // astronomically unlikely; a surviving decode means the harness
      // produced a no-op (e.g. splice of identical bytes).
      EXPECT_EQ(store::serialize_shard_state(decoded.value()), valid)
          << "mutation " << i << " decoded to a different state";
    }
  }
  for (int i = 0; i < kMutationsPerArtifact; ++i) {
    (void)store::deserialize_shard_state(
        rng.next_bytes(rng.next_below(256)));
  }
}

TEST(Fuzz, MutatedAikCertificatesNeverVerify) {
  SimClock clock;
  tpm::TpmDevice tpm(tpm::default_chip(), bytes_of("fuzz-cert"), clock,
                     tpm::TpmDevice::Options{.key_bits = 768});
  tpm::PrivacyCa ca(bytes_of("fuzz-ca"), 768);
  const Bytes valid = ca.certify("client", tpm.aik_public()).serialize();

  SimRng rng(606);
  for (int i = 0; i < kMutationsPerArtifact; ++i) {
    const Bytes mutated = mutate(valid, rng);
    if (mutated == valid) continue;
    auto decoded = tpm::AikCertificate::deserialize(mutated);
    if (!decoded.ok()) continue;
    EXPECT_FALSE(tpm::PrivacyCa::verify(ca.public_key(), decoded.value())
                     .ok())
        << "mutation " << i;
  }
}

}  // namespace
}  // namespace tp
