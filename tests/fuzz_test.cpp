// Mutation-fuzz robustness tests.
//
// Every byte the verifying side consumes arrives from an attacker in the
// threat model, so the decoders and verifiers must (a) never crash and
// (b) never upgrade a mutated artifact into an accepted one. These tests
// run deterministic mutation campaigns: take a valid artifact, flip
// random bytes/truncate/extend, and assert the invariant.
#include <gtest/gtest.h>

#include "core/trusted_path_pal.h"
#include "pal/human_agent.h"
#include "sp/deployment.h"
#include "tpm/quote.h"
#include "util/rng.h"

namespace tp {
namespace {

constexpr int kMutationsPerArtifact = 400;

// Applies one random mutation: flip, truncate, extend, or splice.
Bytes mutate(const Bytes& input, SimRng& rng) {
  Bytes out = input;
  switch (rng.next_below(4)) {
    case 0: {  // bit flip(s)
      if (out.empty()) break;
      const std::size_t flips = 1 + rng.next_below(3);
      for (std::size_t i = 0; i < flips; ++i) {
        out[rng.next_below(out.size())] ^=
            static_cast<std::uint8_t>(1u << rng.next_below(8));
      }
      break;
    }
    case 1: {  // truncate
      if (out.empty()) break;
      out.resize(rng.next_below(out.size()));
      break;
    }
    case 2: {  // extend with junk
      const Bytes junk = rng.next_bytes(1 + rng.next_below(16));
      append(out, junk);
      break;
    }
    case 3: {  // overwrite a window with junk
      if (out.empty()) break;
      const std::size_t start = rng.next_below(out.size());
      const std::size_t len =
          std::min(out.size() - start, 1 + rng.next_below(8));
      const Bytes junk = rng.next_bytes(len);
      std::copy(junk.begin(), junk.end(),
                out.begin() + static_cast<std::ptrdiff_t>(start));
      break;
    }
  }
  return out;
}

TEST(Fuzz, MessageDecodersNeverCrash) {
  SimRng rng(101);
  const core::TxSubmit submit{"client", "pay 10 EUR", Bytes(32, 7)};
  const core::EnrollComplete enroll{"client", Bytes(64, 1), Bytes(128, 2),
                                    Bytes(96, 3)};
  const std::vector<Bytes> corpus = {
      submit.serialize(),
      enroll.serialize(),
      core::TxChallenge{42, Bytes(20, 9)}.serialize(),
      core::TxConfirm{"client", 42, core::Verdict::kConfirmed, Bytes(96, 4)}
          .serialize(),
      core::TxResult{42, true, "ok"}.serialize(),
      core::EnrollChallenge{Bytes(20, 5)}.serialize(),
      core::EnrollResult{false, "nope"}.serialize(),
      core::EnrollBegin{"client"}.serialize(),
  };
  for (const Bytes& seed : corpus) {
    for (int i = 0; i < kMutationsPerArtifact; ++i) {
      const Bytes mutated = mutate(seed, rng);
      // Every decoder must handle every mutation without UB; outcomes
      // are irrelevant, absence of crash/sanitizer-trap is the assertion.
      (void)core::TxSubmit::deserialize(mutated);
      (void)core::TxChallenge::deserialize(mutated);
      (void)core::TxConfirm::deserialize(mutated);
      (void)core::TxResult::deserialize(mutated);
      (void)core::EnrollBegin::deserialize(mutated);
      (void)core::EnrollChallenge::deserialize(mutated);
      (void)core::EnrollComplete::deserialize(mutated);
      (void)core::EnrollResult::deserialize(mutated);
      (void)core::open_envelope(mutated);
    }
  }
}

TEST(Fuzz, SpHandlesArbitraryFramesWithoutCrashing) {
  sp::DeploymentConfig cfg;
  cfg.client_id = "fuzz";
  cfg.seed = bytes_of("fuzz-sp");
  cfg.tpm_key_bits = 768;
  cfg.client_key_bits = 768;
  sp::Deployment world(cfg);
  SimRng rng(202);

  for (int i = 0; i < 2000; ++i) {
    const Bytes frame = rng.next_bytes(rng.next_below(200));
    const Bytes response = world.sp().handle_frame(frame);
    EXPECT_FALSE(response.empty());  // the server always answers
  }
  EXPECT_EQ(world.sp().stats().tx_accepted, 0u);
}

TEST(Fuzz, MutatedQuotesNeverVerify) {
  SimClock clock;
  tpm::TpmDevice tpm(tpm::default_chip(), bytes_of("fuzz-quote"), clock,
                     tpm::TpmDevice::Options{.key_bits = 768});
  const Bytes nonce(20, 0x11);
  auto quote = tpm.quote(nonce, tpm::PcrSelection::of({17}));
  ASSERT_TRUE(quote.ok());
  const Bytes valid = quote.value().serialize();
  ASSERT_TRUE(tpm::verify_quote(
                  tpm.aik_public(),
                  tpm::QuoteResult::deserialize(valid).value(), nonce)
                  .ok());

  SimRng rng(303);
  int parsed = 0;
  for (int i = 0; i < kMutationsPerArtifact; ++i) {
    const Bytes mutated = mutate(valid, rng);
    if (mutated == valid) continue;
    auto decoded = tpm::QuoteResult::deserialize(mutated);
    if (!decoded.ok()) continue;
    ++parsed;
    // Even when the mutation survives parsing, verification must fail.
    EXPECT_FALSE(
        tpm::verify_quote(tpm.aik_public(), decoded.value(), nonce).ok())
        << "mutation " << i << " verified!";
  }
  // Sanity: the campaign actually exercised the verify path.
  EXPECT_GT(parsed, 0);
}

TEST(Fuzz, MutatedSealedBlobsNeverUnseal) {
  SimClock clock;
  tpm::TpmDevice tpm(tpm::default_chip(), bytes_of("fuzz-seal"), clock,
                     tpm::TpmDevice::Options{.key_bits = 768});
  auto blob = tpm.seal(tpm::Locality::kOs, tpm::PcrSelection::of({10}),
                       0xff, bytes_of("the confirmation key"));
  ASSERT_TRUE(blob.ok());

  SimRng rng(404);
  for (int i = 0; i < kMutationsPerArtifact; ++i) {
    const Bytes mutated = mutate(blob.value(), rng);
    if (mutated == blob.value()) continue;
    auto out = tpm.unseal(tpm::Locality::kOs, mutated);
    EXPECT_FALSE(out.ok()) << "mutation " << i << " unsealed!";
  }
}

TEST(Fuzz, MutatedConfirmationsNeverAccepted) {
  // Full-protocol campaign: mutate a VALID TxConfirm wire message and
  // replay it against the SP; nothing mutated may be accepted.
  sp::DeploymentConfig cfg;
  cfg.client_id = "victim";
  cfg.seed = bytes_of("fuzz-confirm");
  cfg.tpm_key_bits = 768;
  cfg.client_key_bits = 768;
  sp::Deployment world(cfg);

  devices::HumanParams hp;
  hp.typo_prob = 0.0;
  pal::HumanAgent agent(devices::HumanModel(hp, SimRng(5)), "pay 1");
  world.client().set_user_agent(&agent);
  ASSERT_TRUE(world.client().enroll().ok());

  // Mints a fresh (challenge, genuine confirmation) pair as wire bytes.
  pal::SessionDriver driver(world.platform());
  driver.set_user_agent(&agent);
  auto mint_frame = [&]() -> Bytes {
    core::TxSubmit submit{"victim", "pay 1", bytes_of("p")};
    const auto challenge = world.sp().begin_transaction(submit);
    core::PalConfirmInput in;
    in.tx_summary = "pay 1";
    in.tx_digest = submit.digest();
    in.nonce = challenge.nonce;
    in.sealed_key = world.client().sealed_key_blob();
    auto session = driver.run(core::make_trusted_path_pal(), in.marshal());
    auto pal_out = core::PalConfirmOutput::unmarshal(session.value().output);
    core::TxConfirm confirm{"victim", challenge.tx_id,
                            core::Verdict::kConfirmed,
                            pal_out.value().signature};
    return core::envelope(core::MsgType::kTxConfirm, confirm.serialize());
  };

  const Bytes valid_frame = mint_frame();
  SimRng rng(505);
  for (int i = 0; i < kMutationsPerArtifact; ++i) {
    const Bytes mutated = mutate(valid_frame, rng);
    if (mutated == valid_frame) continue;
    (void)world.sp().handle_frame(mutated);
  }
  // No mutation got a transaction executed. (A mutated frame that still
  // parses MAY legitimately consume the pending challenge -- that is the
  // one-shot design working -- but it must never be accepted.)
  EXPECT_EQ(world.sp().stats().tx_accepted, 0u);

  // A freshly minted genuine confirmation still goes through.
  const Bytes response = world.sp().handle_frame(mint_frame());
  auto opened = core::open_envelope(response);
  ASSERT_TRUE(opened.ok());
  auto result = core::TxResult::deserialize(opened.value().second);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().accepted);
  EXPECT_EQ(world.sp().stats().tx_accepted, 1u);
}

TEST(Fuzz, MutatedAikCertificatesNeverVerify) {
  SimClock clock;
  tpm::TpmDevice tpm(tpm::default_chip(), bytes_of("fuzz-cert"), clock,
                     tpm::TpmDevice::Options{.key_bits = 768});
  tpm::PrivacyCa ca(bytes_of("fuzz-ca"), 768);
  const Bytes valid = ca.certify("client", tpm.aik_public()).serialize();

  SimRng rng(606);
  for (int i = 0; i < kMutationsPerArtifact; ++i) {
    const Bytes mutated = mutate(valid, rng);
    if (mutated == valid) continue;
    auto decoded = tpm::AikCertificate::deserialize(mutated);
    if (!decoded.ok()) continue;
    EXPECT_FALSE(tpm::PrivacyCa::verify(ca.public_key(), decoded.value())
                     .ok())
        << "mutation " << i;
  }
}

}  // namespace
}  // namespace tp
