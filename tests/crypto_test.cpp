// Crypto substrate tests: published vectors for SHA-1/SHA-256/HMAC/AES,
// arithmetic properties for the bignum layer, and RSA round-trips.
#include <gtest/gtest.h>

#include "crypto/aes.h"
#include "crypto/bignum.h"
#include "crypto/drbg.h"
#include "crypto/hmac.h"
#include "crypto/modes.h"
#include "crypto/rsa.h"
#include "crypto/sha1.h"
#include "crypto/sha256.h"
#include "util/rng.h"

namespace tp::crypto {
namespace {

std::function<Bytes(std::size_t)> test_entropy(const std::string& label) {
  auto drbg = std::make_shared<HmacDrbg>(bytes_of("test-entropy:" + label));
  return [drbg](std::size_t n) { return drbg->generate(n); };
}

// ---------------------------------------------------------------- SHA-1

TEST(Sha1, Fips180Vectors) {
  EXPECT_EQ(to_hex(Sha1::hash(bytes_of(""))),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709");
  EXPECT_EQ(to_hex(Sha1::hash(bytes_of("abc"))),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
  EXPECT_EQ(to_hex(Sha1::hash(bytes_of(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1, MillionA) {
  Sha1 ctx;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) ctx.update(chunk);
  EXPECT_EQ(to_hex(ctx.finalize()),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1, IncrementalMatchesOneShot) {
  const Bytes msg = bytes_of("the quick brown fox jumps over the lazy dog");
  for (std::size_t split = 0; split <= msg.size(); ++split) {
    Sha1 ctx;
    ctx.update(BytesView(msg).subspan(0, split));
    ctx.update(BytesView(msg).subspan(split));
    EXPECT_EQ(ctx.finalize(), Sha1::hash(msg)) << "split=" << split;
  }
}

TEST(Sha1, ReuseAfterFinalizeThrows) {
  Sha1 ctx;
  ctx.update(bytes_of("x"));
  (void)ctx.finalize();
  EXPECT_THROW(ctx.update(bytes_of("y")), std::logic_error);
  EXPECT_THROW(ctx.finalize(), std::logic_error);
}

// -------------------------------------------------------------- SHA-256

TEST(Sha256, Fips180Vectors) {
  EXPECT_EQ(to_hex(Sha256::hash(bytes_of(""))),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(to_hex(Sha256::hash(bytes_of("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(to_hex(Sha256::hash(bytes_of(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionA) {
  Sha256 ctx;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) ctx.update(chunk);
  EXPECT_EQ(to_hex(ctx.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const Bytes msg = bytes_of(
      "uni-directional trusted path: transaction confirmation");
  for (std::size_t split = 0; split <= msg.size(); ++split) {
    Sha256 ctx;
    ctx.update(BytesView(msg).subspan(0, split));
    ctx.update(BytesView(msg).subspan(split));
    EXPECT_EQ(ctx.finalize(), Sha256::hash(msg)) << "split=" << split;
  }
}

TEST(Sha256, BoundaryLengths) {
  // Exercise the padding branch on every length around the block size.
  for (std::size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    const Bytes msg(len, 0x5a);
    Sha256 a;
    a.update(msg);
    Sha256 b;
    for (std::size_t i = 0; i < len; ++i) {
      b.update(BytesView(&msg[i], 1));
    }
    EXPECT_EQ(a.finalize(), b.finalize()) << "len=" << len;
  }
}

// ----------------------------------------------------------------- HMAC

TEST(Hmac, Rfc2202Sha1) {
  const Bytes key(20, 0x0b);
  EXPECT_EQ(to_hex(hmac_sha1(key, bytes_of("Hi There"))),
            "b617318655057264e28bc0b6fb378c8ef146be00");
  EXPECT_EQ(to_hex(hmac_sha1(bytes_of("Jefe"),
                             bytes_of("what do ya want for nothing?"))),
            "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79");
}

TEST(Hmac, Rfc4231Sha256) {
  const Bytes key(20, 0x0b);
  EXPECT_EQ(to_hex(hmac_sha256(key, bytes_of("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
  EXPECT_EQ(to_hex(hmac_sha256(bytes_of("Jefe"),
                               bytes_of("what do ya want for nothing?"))),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, LongKeyIsHashedFirst) {
  // RFC 4231 test case 6: 131-byte key.
  const Bytes key(131, 0xaa);
  EXPECT_EQ(to_hex(hmac_sha256(
                key, bytes_of("Test Using Larger Than Block-Size Key - "
                              "Hash Key First"))),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, KeySensitivity) {
  const Bytes msg = bytes_of("payload");
  EXPECT_NE(hmac_sha256(bytes_of("k1"), msg), hmac_sha256(bytes_of("k2"), msg));
}

TEST(Hmac, CtxMatchesOneShotAcrossKeyLengths) {
  // Key lengths around the 64-byte block boundary exercise zero-padding
  // (short keys) and the hash-the-key-first path (>64).
  const Bytes msg = bytes_of("precomputed midstates must not change the MAC");
  for (std::size_t key_len : {0u, 1u, 63u, 64u, 65u, 128u}) {
    Bytes key(key_len);
    for (std::size_t i = 0; i < key_len; ++i) {
      key[i] = static_cast<std::uint8_t>(i * 7 + 3);
    }
    HmacSha256Ctx ctx256(key);
    ctx256.update(msg);
    EXPECT_EQ(ctx256.finalize(), hmac_sha256(key, msg)) << "key_len=" << key_len;
    HmacSha1Ctx ctx1(key);
    ctx1.update(msg);
    EXPECT_EQ(ctx1.finalize(), hmac_sha1(key, msg)) << "key_len=" << key_len;
  }
}

TEST(Hmac, CtxMatchesOneShotAcrossMessageLengths) {
  // Message sizes straddling the compression-block boundary, fed both in
  // one update and byte-at-a-time.
  const Bytes key = bytes_of("block-boundary key");
  for (std::size_t len : {0u, 1u, 55u, 56u, 63u, 64u, 65u, 127u, 128u, 1000u}) {
    Bytes msg(len);
    for (std::size_t i = 0; i < len; ++i) {
      msg[i] = static_cast<std::uint8_t>(i);
    }
    HmacSha256Ctx whole(key);
    whole.update(msg);
    HmacSha256Ctx chunked(key);
    for (std::size_t i = 0; i < len; ++i) {
      chunked.update(BytesView(&msg[i], 1));
    }
    const Bytes expected = hmac_sha256(key, msg);
    EXPECT_EQ(whole.finalize(), expected) << "len=" << len;
    EXPECT_EQ(chunked.finalize(), expected) << "len=" << len;
  }
}

TEST(Hmac, CtxIsReusableAfterFinalize) {
  const Bytes key = bytes_of("reuse key");
  HmacSha256Ctx ctx(key);
  for (int round = 0; round < 3; ++round) {
    const Bytes msg = bytes_of("round " + std::to_string(round));
    ctx.update(msg);
    EXPECT_EQ(ctx.finalize(), hmac_sha256(key, msg)) << "round=" << round;
  }
}

TEST(Hmac, CtxResetDiscardsBufferedInput) {
  const Bytes key = bytes_of("reset key");
  HmacSha256Ctx ctx(key);
  ctx.update(bytes_of("garbage that reset must throw away"));
  ctx.reset();
  ctx.update(bytes_of("actual message"));
  EXPECT_EQ(ctx.finalize(), hmac_sha256(key, bytes_of("actual message")));
}

TEST(Hmac, CtxRekeySwitchesKeys) {
  HmacSha256Ctx ctx(bytes_of("first key"));
  ctx.update(bytes_of("msg"));
  EXPECT_EQ(ctx.finalize(), hmac_sha256(bytes_of("first key"), bytes_of("msg")));
  ctx.rekey(bytes_of("second key"));
  ctx.update(bytes_of("msg"));
  EXPECT_EQ(ctx.finalize(),
            hmac_sha256(bytes_of("second key"), bytes_of("msg")));
}

TEST(Hmac, FinalizeIntoRejectsShortOutput) {
  HmacSha256Ctx ctx(bytes_of("k"));
  std::array<std::uint8_t, kSha256DigestSize - 1> small;
  EXPECT_THROW(ctx.finalize_into(small), std::invalid_argument);
}

// ------------------------------------------------------------------ AES

TEST(Aes, Fips197Vectors) {
  const Bytes pt = from_hex("00112233445566778899aabbccddeeff");
  struct Case {
    const char* key;
    const char* ct;
  };
  const Case cases[] = {
      {"000102030405060708090a0b0c0d0e0f",
       "69c4e0d86a7b0430d8cdb78070b4c55a"},
      {"000102030405060708090a0b0c0d0e0f1011121314151617",
       "dda97ca4864cdfe06eaf70a0ec0d7191"},
      {"000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
       "8ea2b7ca516745bfeafc49904b496089"},
  };
  for (const auto& c : cases) {
    const Aes aes(from_hex(c.key));
    std::uint8_t out[16];
    aes.encrypt_block(pt.data(), out);
    EXPECT_EQ(to_hex(BytesView(out, 16)), c.ct);
    std::uint8_t back[16];
    aes.decrypt_block(out, back);
    EXPECT_EQ(to_hex(BytesView(back, 16)), to_hex(pt));
  }
}

TEST(Aes, RejectsBadKeySize) {
  EXPECT_THROW(Aes(Bytes(15, 0)), std::invalid_argument);
  EXPECT_THROW(Aes(Bytes(33, 0)), std::invalid_argument);
}

TEST(Modes, CbcFirstBlockMatchesSp80038a) {
  const Aes aes(from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
  const Bytes iv = from_hex("000102030405060708090a0b0c0d0e0f");
  const Bytes pt = from_hex("6bc1bee22e409f96e93d7e117393172a");
  const Bytes ct = cbc_encrypt(aes, iv, pt);
  ASSERT_GE(ct.size(), 16u);
  EXPECT_EQ(to_hex(BytesView(ct).subspan(0, 16)),
            "7649abac8119b246cee98e9b12e9197d");
}

TEST(Modes, CbcRoundTripVariousLengths) {
  const Aes aes(Bytes(32, 0x42));
  const Bytes iv(16, 0x01);
  for (std::size_t len : {0u, 1u, 15u, 16u, 17u, 31u, 32u, 100u}) {
    tp::SimRng rng(len);
    const Bytes pt = rng.next_bytes(len);
    const Bytes ct = cbc_encrypt(aes, iv, pt);
    EXPECT_EQ(ct.size() % 16, 0u);
    auto back = cbc_decrypt(aes, iv, ct);
    ASSERT_TRUE(back.ok()) << "len=" << len;
    EXPECT_EQ(back.value(), pt);
  }
}

TEST(Modes, CbcDetectsCorruption) {
  const Aes aes(Bytes(32, 0x42));
  const Bytes iv(16, 0x01);
  Bytes ct = cbc_encrypt(aes, iv, bytes_of("attack at dawn"));
  ct.back() ^= 0x80;
  auto r = cbc_decrypt(aes, iv, ct);
  // Corruption of the last block corrupts padding with overwhelming
  // probability; either error or wrong plaintext is acceptable, but the
  // common case is a padding error.
  if (r.ok()) {
    EXPECT_NE(r.value(), bytes_of("attack at dawn"));
  } else {
    EXPECT_EQ(r.code(), Err::kCryptoError);
  }
}

TEST(Modes, CbcRejectsBadLengths) {
  const Aes aes(Bytes(16, 0));
  EXPECT_FALSE(cbc_decrypt(aes, Bytes(16, 0), Bytes(15, 0)).ok());
  EXPECT_FALSE(cbc_decrypt(aes, Bytes(16, 0), Bytes{}).ok());
  EXPECT_FALSE(cbc_decrypt(aes, Bytes(8, 0), Bytes(16, 0)).ok());
}

TEST(Modes, CtrMatchesSp80038a) {
  const Aes aes(from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
  const Bytes nonce = from_hex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff");
  const Bytes pt = from_hex("6bc1bee22e409f96e93d7e117393172a");
  EXPECT_EQ(to_hex(ctr_crypt(aes, nonce, pt)),
            "874d6191b620e3261bef6864990db6ce");
}

TEST(Modes, CtrIsInvolution) {
  const Aes aes(Bytes(16, 0x55));
  const Bytes nonce(16, 0x77);
  tp::SimRng rng(99);
  const Bytes pt = rng.next_bytes(47);
  EXPECT_EQ(ctr_crypt(aes, nonce, ctr_crypt(aes, nonce, pt)), pt);
}

// --------------------------------------------------------------- BigInt

TEST(BigInt, ByteRoundTrip) {
  const Bytes raw = from_hex("0102030405060708090a0b0c0d0e0f10");
  const BigInt v = BigInt::from_bytes_be(raw);
  EXPECT_EQ(v.to_bytes_be(), raw);
  EXPECT_EQ(v.to_bytes_be(20).size(), 20u);
  EXPECT_EQ(BigInt::from_bytes_be(v.to_bytes_be(20)), v);
}

TEST(BigInt, LeadingZerosIgnored) {
  EXPECT_EQ(BigInt::from_hex("0000ff"), BigInt(255));
}

TEST(BigInt, BasicArithmetic) {
  const BigInt a(1000000007), b(998244353);
  EXPECT_EQ(a + b, BigInt(1998244360ull));
  EXPECT_EQ(a - b, BigInt(1755654ull));
  EXPECT_EQ(a * b, BigInt(998244359987710471ull));
  EXPECT_THROW(b - a, std::domain_error);
}

TEST(BigInt, CarryPropagation) {
  const BigInt max32(0xffffffffull);
  EXPECT_EQ(max32 + BigInt(1), BigInt(0x100000000ull));
  EXPECT_EQ((max32 * max32).to_hex(), "fffffffe00000001");
}

TEST(BigInt, Shifts) {
  const BigInt one(1);
  EXPECT_EQ((one << 100).bit_length(), 101u);
  EXPECT_EQ(((one << 100) >> 100), one);
  EXPECT_EQ((BigInt(0xf0) >> 4), BigInt(0xf));
  EXPECT_EQ((BigInt() << 64), BigInt());
}

TEST(BigInt, CompareAndBits) {
  EXPECT_LT(BigInt(5), BigInt(6));
  EXPECT_GT(BigInt::from_hex("0100000000"), BigInt(0xffffffffull));
  const BigInt v(0b1010);
  EXPECT_TRUE(v.bit(1));
  EXPECT_FALSE(v.bit(0));
  EXPECT_EQ(v.bit_length(), 4u);
  EXPECT_EQ(BigInt().bit_length(), 0u);
}

TEST(BigInt, DivModSmall) {
  const auto [q, r] = BigInt(1000000007).divmod(BigInt(13));
  EXPECT_EQ(q, BigInt(76923077ull));
  EXPECT_EQ(r, BigInt(6));
  EXPECT_THROW(BigInt(1).divmod(BigInt()), std::domain_error);
}

TEST(BigInt, DivModReconstructionProperty) {
  auto entropy = test_entropy("divmod");
  for (int i = 0; i < 200; ++i) {
    const BigInt a = BigInt::from_bytes_be(entropy(1 + i % 40));
    BigInt b = BigInt::from_bytes_be(entropy(1 + (i * 7) % 24));
    if (b.is_zero()) b = BigInt(1);
    const auto [q, r] = a.divmod(b);
    EXPECT_EQ(q * b + r, a) << "iteration " << i;
    EXPECT_LT(r, b);
  }
}

TEST(BigInt, DivModNormalizationEdge) {
  // Divisor with high bit set in the top limb (no normalization shift)
  // and quotient digits near the base.
  const BigInt a = BigInt::from_hex("ffffffffffffffffffffffffffffffff");
  const BigInt b = BigInt::from_hex("80000000000000000000000000000001");
  const auto [q, r] = a.divmod(b);
  EXPECT_EQ(q * b + r, a);
  EXPECT_LT(r, b);
}

TEST(BigInt, ModExpKnownValues) {
  EXPECT_EQ(BigInt::mod_exp(BigInt(2), BigInt(10), BigInt(1000)), BigInt(24));
  EXPECT_EQ(BigInt::mod_exp(BigInt(3), BigInt(0), BigInt(7)), BigInt(1));
  EXPECT_EQ(BigInt::mod_exp(BigInt(5), BigInt(117), BigInt(19)),
            BigInt(1));  // 5^18 = 1 mod 19, 117 = 6*18+9 -> 5^9 mod 19
  // Recompute directly: 5^9 mod 19 = 1953125 mod 19.
  EXPECT_EQ(BigInt::mod_exp(BigInt(5), BigInt(9), BigInt(19)),
            BigInt(1953125ull % 19));
}

TEST(BigInt, ModExpMatchesNaive) {
  auto entropy = test_entropy("modexp");
  for (int i = 0; i < 25; ++i) {
    const BigInt base = BigInt::from_bytes_be(entropy(8));
    const BigInt exp = BigInt::from_bytes_be(entropy(2));
    BigInt m = BigInt::from_bytes_be(entropy(8));
    if (m.is_zero()) m = BigInt(7);
    if (m.is_even()) m = m + BigInt(1);  // exercise the Montgomery path
    BigInt naive(1);
    const BigInt b = base % m;
    for (BigInt c; c < exp; c = c + BigInt(1)) {
      naive = (naive * b) % m;
    }
    EXPECT_EQ(BigInt::mod_exp(base, exp, m), naive) << "iteration " << i;
  }
}

TEST(BigInt, ModExpEvenModulus) {
  EXPECT_EQ(BigInt::mod_exp(BigInt(3), BigInt(4), BigInt(100)), BigInt(81));
  EXPECT_EQ(BigInt::mod_exp(BigInt(7), BigInt(3), BigInt(48)),
            BigInt(343ull % 48));
}

TEST(BigInt, FermatLittleTheoremProperty) {
  // For prime p and a not divisible by p: a^(p-1) = 1 mod p.
  const BigInt p = BigInt::from_hex("ffffffffffffffc5");  // 2^64 - 59, prime
  auto entropy = test_entropy("fermat");
  for (int i = 0; i < 20; ++i) {
    BigInt a = BigInt::from_bytes_be(entropy(8)) % p;
    if (a.is_zero()) a = BigInt(2);
    EXPECT_EQ(BigInt::mod_exp(a, p - BigInt(1), p), BigInt(1));
  }
}

TEST(BigInt, ModInverse) {
  const BigInt m(1000000007);
  auto entropy = test_entropy("inverse");
  for (int i = 0; i < 50; ++i) {
    BigInt a = BigInt::from_bytes_be(entropy(4)) % m;
    if (a.is_zero()) a = BigInt(3);
    const BigInt inv = BigInt::mod_inverse(a, m);
    ASSERT_FALSE(inv.is_zero());
    EXPECT_EQ(BigInt::mod_mul(a, inv, m), BigInt(1));
  }
  // Non-invertible case.
  EXPECT_EQ(BigInt::mod_inverse(BigInt(6), BigInt(9)), BigInt());
}

TEST(BigInt, Gcd) {
  EXPECT_EQ(BigInt::gcd(BigInt(48), BigInt(36)), BigInt(12));
  EXPECT_EQ(BigInt::gcd(BigInt(17), BigInt(5)), BigInt(1));
  EXPECT_EQ(BigInt::gcd(BigInt(), BigInt(7)), BigInt(7));
}

TEST(BigInt, RandomBelowBounds) {
  auto entropy = test_entropy("random-below");
  const BigInt bound = BigInt::from_hex("0123456789abcdef");
  for (int i = 0; i < 100; ++i) {
    EXPECT_LT(BigInt::random_below(bound, entropy), bound);
  }
}

TEST(BigInt, PrimalityKnownValues) {
  auto entropy = test_entropy("primality");
  EXPECT_TRUE(BigInt::is_probable_prime(BigInt(2), 10, entropy));
  EXPECT_TRUE(BigInt::is_probable_prime(BigInt(65537), 10, entropy));
  EXPECT_TRUE(BigInt::is_probable_prime(
      BigInt::from_hex("ffffffffffffffc5"), 10, entropy));
  EXPECT_FALSE(BigInt::is_probable_prime(BigInt(1), 10, entropy));
  EXPECT_FALSE(BigInt::is_probable_prime(BigInt(561), 10, entropy));  // Carmichael
  EXPECT_FALSE(BigInt::is_probable_prime(
      BigInt(3215031751ull), 10, entropy));  // strong pseudoprime to few bases
}

TEST(BigInt, GeneratePrimeHasRequestedShape) {
  auto entropy = test_entropy("genprime");
  const BigInt p = BigInt::generate_prime(128, entropy);
  EXPECT_EQ(p.bit_length(), 128u);
  EXPECT_TRUE(p.is_odd());
  EXPECT_TRUE(p.bit(126));  // second-highest bit forced
  EXPECT_TRUE(BigInt::is_probable_prime(p, 16, entropy));
}

// ------------------------------------------------------------------ DRBG

TEST(HmacDrbg, DeterministicFromSeed) {
  HmacDrbg a(bytes_of("seed"));
  HmacDrbg b(bytes_of("seed"));
  EXPECT_EQ(a.generate(64), b.generate(64));
}

TEST(HmacDrbg, DifferentSeedsDiverge) {
  HmacDrbg a(bytes_of("seed-1"));
  HmacDrbg b(bytes_of("seed-2"));
  EXPECT_NE(a.generate(32), b.generate(32));
}

TEST(HmacDrbg, StateAdvances) {
  HmacDrbg a(bytes_of("seed"));
  EXPECT_NE(a.generate(32), a.generate(32));
}

TEST(HmacDrbg, ReseedChangesStream) {
  HmacDrbg a(bytes_of("seed"));
  HmacDrbg b(bytes_of("seed"));
  b.reseed(bytes_of("extra"));
  EXPECT_NE(a.generate(32), b.generate(32));
}

TEST(HmacDrbg, OutputLength) {
  HmacDrbg a(bytes_of("seed"));
  EXPECT_EQ(a.generate(1).size(), 1u);
  EXPECT_EQ(a.generate(33).size(), 33u);
  EXPECT_EQ(a.generate(100).size(), 100u);
}

// ------------------------------------------------------------------- RSA

class RsaTest : public ::testing::Test {
 protected:
  // 768-bit keys keep the unit tests fast; benches use 2048.
  static const RsaPrivateKey& key() {
    static const RsaPrivateKey k = rsa_generate(768, test_entropy("rsa-key"));
    return k;
  }
};

TEST_F(RsaTest, KeyStructure) {
  const auto& k = key();
  EXPECT_EQ(k.n.bit_length(), 768u);
  EXPECT_EQ(k.e, BigInt(65537));
  EXPECT_EQ(k.p * k.q, k.n);
  // e*d = 1 mod (p-1)(q-1)
  const BigInt phi = (k.p - BigInt(1)) * (k.q - BigInt(1));
  EXPECT_EQ(BigInt::mod_mul(k.e, k.d, phi), BigInt(1));
}

TEST_F(RsaTest, SignVerifyRoundTripSha1AndSha256) {
  const Bytes msg = bytes_of("transfer 100 EUR to account 42");
  for (HashAlg alg : {HashAlg::kSha1, HashAlg::kSha256}) {
    const Bytes sig = rsa_sign(key(), alg, msg);
    EXPECT_EQ(sig.size(), key().modulus_bytes());
    EXPECT_TRUE(rsa_verify(key().public_key(), alg, msg, sig).ok());
  }
}

TEST_F(RsaTest, VerifyRejectsTamperedMessage) {
  const Bytes msg = bytes_of("transfer 100 EUR to account 42");
  const Bytes sig = rsa_sign(key(), HashAlg::kSha256, msg);
  const Bytes tampered = bytes_of("transfer 900 EUR to account 42");
  EXPECT_EQ(rsa_verify(key().public_key(), HashAlg::kSha256, tampered, sig)
                .code(),
            Err::kAuthFail);
}

TEST_F(RsaTest, VerifyRejectsTamperedSignature) {
  const Bytes msg = bytes_of("m");
  Bytes sig = rsa_sign(key(), HashAlg::kSha256, msg);
  sig[sig.size() / 2] ^= 0x01;
  EXPECT_FALSE(rsa_verify(key().public_key(), HashAlg::kSha256, msg, sig).ok());
}

TEST_F(RsaTest, VerifyRejectsWrongHashAlg) {
  const Bytes msg = bytes_of("m");
  const Bytes sig = rsa_sign(key(), HashAlg::kSha1, msg);
  EXPECT_FALSE(rsa_verify(key().public_key(), HashAlg::kSha256, msg, sig).ok());
}

TEST_F(RsaTest, VerifyRejectsWrongKey) {
  static const RsaPrivateKey other = rsa_generate(768, test_entropy("other"));
  const Bytes msg = bytes_of("m");
  const Bytes sig = rsa_sign(key(), HashAlg::kSha256, msg);
  EXPECT_FALSE(rsa_verify(other.public_key(), HashAlg::kSha256, msg, sig).ok());
}

TEST_F(RsaTest, VerifyRejectsBadLength) {
  const Bytes msg = bytes_of("m");
  EXPECT_FALSE(
      rsa_verify(key().public_key(), HashAlg::kSha256, msg, Bytes(10, 0)).ok());
}

TEST_F(RsaTest, EncryptDecryptRoundTrip) {
  auto entropy = test_entropy("rsa-enc");
  const Bytes pt = bytes_of("session-key-material-0123456789");
  auto ct = rsa_encrypt(key().public_key(), pt, entropy);
  ASSERT_TRUE(ct.ok());
  EXPECT_EQ(ct.value().size(), key().modulus_bytes());
  auto back = rsa_decrypt(key(), ct.value());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), pt);
}

TEST_F(RsaTest, EncryptRejectsOversizedPlaintext) {
  auto entropy = test_entropy("rsa-enc2");
  const Bytes pt(key().modulus_bytes() - 10, 0x61);
  EXPECT_FALSE(rsa_encrypt(key().public_key(), pt, entropy).ok());
}

TEST_F(RsaTest, DecryptRejectsCorruptedCiphertext) {
  auto entropy = test_entropy("rsa-enc3");
  auto ct = rsa_encrypt(key().public_key(), bytes_of("secret"), entropy);
  ASSERT_TRUE(ct.ok());
  Bytes corrupted = ct.value();
  corrupted[0] ^= 0x01;
  auto back = rsa_decrypt(key(), corrupted);
  // Either a padding failure or garbage != original; padding failure is
  // overwhelmingly likely.
  if (back.ok()) {
    EXPECT_NE(back.value(), bytes_of("secret"));
  }
}

TEST_F(RsaTest, PublicKeySerializationRoundTrip) {
  const RsaPublicKey pk = key().public_key();
  auto back = RsaPublicKey::deserialize(pk.serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), pk);
  EXPECT_EQ(back.value().fingerprint(), pk.fingerprint());
}

TEST_F(RsaTest, PrivateKeySerializationRoundTrip) {
  auto back = RsaPrivateKey::deserialize(key().serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().n, key().n);
  EXPECT_EQ(back.value().qinv, key().qinv);
  // The deserialized key must still sign correctly.
  const Bytes msg = bytes_of("roundtrip");
  EXPECT_TRUE(rsa_verify(key().public_key(), HashAlg::kSha256, msg,
                         rsa_sign(back.value(), HashAlg::kSha256, msg))
                  .ok());
}

TEST_F(RsaTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(RsaPublicKey::deserialize(Bytes{1, 2, 3}).ok());
  EXPECT_FALSE(RsaPrivateKey::deserialize(Bytes{}).ok());
}

TEST_F(RsaTest, DeterministicKeygen) {
  const RsaPrivateKey a = rsa_generate(512, test_entropy("det"));
  const RsaPrivateKey b = rsa_generate(512, test_entropy("det"));
  EXPECT_EQ(a.n, b.n);
  EXPECT_EQ(a.d, b.d);
}

TEST_F(RsaTest, DistinctSeedsDistinctKeys) {
  const RsaPrivateKey a = rsa_generate(512, test_entropy("s1"));
  const RsaPrivateKey b = rsa_generate(512, test_entropy("s2"));
  EXPECT_NE(a.n, b.n);
}

}  // namespace
}  // namespace tp::crypto
