// Tests for TPM capability reporting, self-test, and the tick counter.
#include <gtest/gtest.h>

#include "tpm/tpm_device.h"

namespace tp::tpm {
namespace {

class TpmCapTest : public ::testing::Test {
 protected:
  TpmCapTest()
      : tpm_(default_chip(), bytes_of("cap"), clock_,
             TpmDevice::Options{.key_bits = 768}) {}
  SimClock clock_;
  TpmDevice tpm_;
};

TEST_F(TpmCapTest, CapabilityReportsVersionAndVendor) {
  const TpmCapabilities caps = tpm_.get_capability();
  EXPECT_EQ(caps.spec_version_major, 1u);
  EXPECT_EQ(caps.spec_version_minor, 2u);
  EXPECT_EQ(caps.vendor, default_chip().name);
  EXPECT_EQ(caps.num_pcrs, kNumPcrs);
  EXPECT_EQ(caps.max_nv_size, 2048u);
  EXPECT_TRUE(caps.supports_locality_4);
}

TEST_F(TpmCapTest, SelfTestPassesOnHealthyDevice) {
  EXPECT_TRUE(tpm_.self_test().ok());
  // Self-test is a real TPM command: it costs time.
  EXPECT_GT(clock_.total_for("tpm:self_test").ns, 0);
}

TEST_F(TpmCapTest, TickCounterTracksVirtualTime) {
  const std::uint64_t t0 = tpm_.read_tick();
  clock_.advance(SimDuration::millis(100));
  const std::uint64_t t1 = tpm_.read_tick();
  EXPECT_GT(t1, t0);
  // Ticks are microseconds of virtual time (plus the read costs).
  EXPECT_GE(t1 - t0, 100'000u);
}

TEST_F(TpmCapTest, TickCounterIsMonotone) {
  std::uint64_t last = 0;
  for (int i = 0; i < 10; ++i) {
    const std::uint64_t tick = tpm_.read_tick();
    EXPECT_GE(tick, last);
    last = tick;
    clock_.advance(SimDuration::micros(3));
  }
}

}  // namespace
}  // namespace tp::tpm
