# Empty compiler generated dependencies file for captcha_replacement.
# This may be replaced when dependencies are built.
