file(REMOVE_RECURSE
  "CMakeFiles/captcha_replacement.dir/captcha_replacement.cpp.o"
  "CMakeFiles/captcha_replacement.dir/captcha_replacement.cpp.o.d"
  "captcha_replacement"
  "captcha_replacement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/captcha_replacement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
