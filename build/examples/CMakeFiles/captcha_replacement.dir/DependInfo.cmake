
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/captcha_replacement.cpp" "examples/CMakeFiles/captcha_replacement.dir/captcha_replacement.cpp.o" "gcc" "examples/CMakeFiles/captcha_replacement.dir/captcha_replacement.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sp/CMakeFiles/tp_sp.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/tp_host.dir/DependInfo.cmake"
  "/root/repo/build/src/captcha/CMakeFiles/tp_captcha.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/pal/CMakeFiles/tp_pal.dir/DependInfo.cmake"
  "/root/repo/build/src/drtm/CMakeFiles/tp_drtm.dir/DependInfo.cmake"
  "/root/repo/build/src/tpm/CMakeFiles/tp_tpm.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/tp_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/devices/CMakeFiles/tp_devices.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
