file(REMOVE_RECURSE
  "CMakeFiles/ecommerce_checkout.dir/ecommerce_checkout.cpp.o"
  "CMakeFiles/ecommerce_checkout.dir/ecommerce_checkout.cpp.o.d"
  "ecommerce_checkout"
  "ecommerce_checkout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecommerce_checkout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
