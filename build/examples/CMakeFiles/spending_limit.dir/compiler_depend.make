# Empty compiler generated dependencies file for spending_limit.
# This may be replaced when dependencies are built.
