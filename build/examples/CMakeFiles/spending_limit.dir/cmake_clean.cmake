file(REMOVE_RECURSE
  "CMakeFiles/spending_limit.dir/spending_limit.cpp.o"
  "CMakeFiles/spending_limit.dir/spending_limit.cpp.o.d"
  "spending_limit"
  "spending_limit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spending_limit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
