# Empty dependencies file for bench_tpm_ops.
# This may be replaced when dependencies are built.
