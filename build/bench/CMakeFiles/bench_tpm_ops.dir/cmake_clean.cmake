file(REMOVE_RECURSE
  "CMakeFiles/bench_tpm_ops.dir/bench_tpm_ops.cpp.o"
  "CMakeFiles/bench_tpm_ops.dir/bench_tpm_ops.cpp.o.d"
  "bench_tpm_ops"
  "bench_tpm_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tpm_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
