# Empty compiler generated dependencies file for bench_design_ablation.
# This may be replaced when dependencies are built.
