# Empty dependencies file for bench_attack_efficacy.
# This may be replaced when dependencies are built.
