file(REMOVE_RECURSE
  "CMakeFiles/bench_attack_efficacy.dir/bench_attack_efficacy.cpp.o"
  "CMakeFiles/bench_attack_efficacy.dir/bench_attack_efficacy.cpp.o.d"
  "bench_attack_efficacy"
  "bench_attack_efficacy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_attack_efficacy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
