# Empty dependencies file for bench_enrollment.
# This may be replaced when dependencies are built.
