file(REMOVE_RECURSE
  "CMakeFiles/bench_enrollment.dir/bench_enrollment.cpp.o"
  "CMakeFiles/bench_enrollment.dir/bench_enrollment.cpp.o.d"
  "bench_enrollment"
  "bench_enrollment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_enrollment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
