# Empty dependencies file for bench_human_cost.
# This may be replaced when dependencies are built.
