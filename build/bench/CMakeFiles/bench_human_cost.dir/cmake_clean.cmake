file(REMOVE_RECURSE
  "CMakeFiles/bench_human_cost.dir/bench_human_cost.cpp.o"
  "CMakeFiles/bench_human_cost.dir/bench_human_cost.cpp.o.d"
  "bench_human_cost"
  "bench_human_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_human_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
