file(REMOVE_RECURSE
  "CMakeFiles/bench_fleet_population.dir/bench_fleet_population.cpp.o"
  "CMakeFiles/bench_fleet_population.dir/bench_fleet_population.cpp.o.d"
  "bench_fleet_population"
  "bench_fleet_population.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fleet_population.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
