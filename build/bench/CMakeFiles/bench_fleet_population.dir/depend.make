# Empty dependencies file for bench_fleet_population.
# This may be replaced when dependencies are built.
