# Empty compiler generated dependencies file for bench_session_breakdown.
# This may be replaced when dependencies are built.
