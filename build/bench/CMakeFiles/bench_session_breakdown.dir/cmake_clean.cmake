file(REMOVE_RECURSE
  "CMakeFiles/bench_session_breakdown.dir/bench_session_breakdown.cpp.o"
  "CMakeFiles/bench_session_breakdown.dir/bench_session_breakdown.cpp.o.d"
  "bench_session_breakdown"
  "bench_session_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_session_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
