file(REMOVE_RECURSE
  "CMakeFiles/bench_sp_throughput.dir/bench_sp_throughput.cpp.o"
  "CMakeFiles/bench_sp_throughput.dir/bench_sp_throughput.cpp.o.d"
  "bench_sp_throughput"
  "bench_sp_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sp_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
