# Empty dependencies file for bench_sp_throughput.
# This may be replaced when dependencies are built.
