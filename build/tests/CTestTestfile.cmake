# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_test[1]_include.cmake")
include("/root/repo/build/tests/tpm_test[1]_include.cmake")
include("/root/repo/build/tests/devices_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/drtm_pal_test[1]_include.cmake")
include("/root/repo/build/tests/captcha_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/sp_test[1]_include.cmake")
include("/root/repo/build/tests/adversary_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/extensions2_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/secure_channel_test[1]_include.cmake")
include("/root/repo/build/tests/tpm_capability_test[1]_include.cmake")
include("/root/repo/build/tests/shape_test[1]_include.cmake")
