file(REMOVE_RECURSE
  "CMakeFiles/tpm_capability_test.dir/tpm_capability_test.cpp.o"
  "CMakeFiles/tpm_capability_test.dir/tpm_capability_test.cpp.o.d"
  "tpm_capability_test"
  "tpm_capability_test.pdb"
  "tpm_capability_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpm_capability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
