file(REMOVE_RECURSE
  "CMakeFiles/drtm_pal_test.dir/drtm_pal_test.cpp.o"
  "CMakeFiles/drtm_pal_test.dir/drtm_pal_test.cpp.o.d"
  "drtm_pal_test"
  "drtm_pal_test.pdb"
  "drtm_pal_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drtm_pal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
