# Empty compiler generated dependencies file for drtm_pal_test.
# This may be replaced when dependencies are built.
