file(REMOVE_RECURSE
  "CMakeFiles/captcha_test.dir/captcha_test.cpp.o"
  "CMakeFiles/captcha_test.dir/captcha_test.cpp.o.d"
  "captcha_test"
  "captcha_test.pdb"
  "captcha_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/captcha_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
