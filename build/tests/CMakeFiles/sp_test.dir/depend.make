# Empty dependencies file for sp_test.
# This may be replaced when dependencies are built.
