file(REMOVE_RECURSE
  "CMakeFiles/sp_test.dir/sp_test.cpp.o"
  "CMakeFiles/sp_test.dir/sp_test.cpp.o.d"
  "sp_test"
  "sp_test.pdb"
  "sp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
