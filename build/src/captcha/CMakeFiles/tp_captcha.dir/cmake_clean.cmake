file(REMOVE_RECURSE
  "CMakeFiles/tp_captcha.dir/captcha.cpp.o"
  "CMakeFiles/tp_captcha.dir/captcha.cpp.o.d"
  "libtp_captcha.a"
  "libtp_captcha.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tp_captcha.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
