# Empty dependencies file for tp_captcha.
# This may be replaced when dependencies are built.
