file(REMOVE_RECURSE
  "libtp_captcha.a"
)
