
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pal/pal.cpp" "src/pal/CMakeFiles/tp_pal.dir/pal.cpp.o" "gcc" "src/pal/CMakeFiles/tp_pal.dir/pal.cpp.o.d"
  "/root/repo/src/pal/sealed_state.cpp" "src/pal/CMakeFiles/tp_pal.dir/sealed_state.cpp.o" "gcc" "src/pal/CMakeFiles/tp_pal.dir/sealed_state.cpp.o.d"
  "/root/repo/src/pal/session.cpp" "src/pal/CMakeFiles/tp_pal.dir/session.cpp.o" "gcc" "src/pal/CMakeFiles/tp_pal.dir/session.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/drtm/CMakeFiles/tp_drtm.dir/DependInfo.cmake"
  "/root/repo/build/src/tpm/CMakeFiles/tp_tpm.dir/DependInfo.cmake"
  "/root/repo/build/src/devices/CMakeFiles/tp_devices.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/tp_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
