file(REMOVE_RECURSE
  "CMakeFiles/tp_pal.dir/pal.cpp.o"
  "CMakeFiles/tp_pal.dir/pal.cpp.o.d"
  "CMakeFiles/tp_pal.dir/sealed_state.cpp.o"
  "CMakeFiles/tp_pal.dir/sealed_state.cpp.o.d"
  "CMakeFiles/tp_pal.dir/session.cpp.o"
  "CMakeFiles/tp_pal.dir/session.cpp.o.d"
  "libtp_pal.a"
  "libtp_pal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tp_pal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
