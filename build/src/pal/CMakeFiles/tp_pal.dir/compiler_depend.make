# Empty compiler generated dependencies file for tp_pal.
# This may be replaced when dependencies are built.
