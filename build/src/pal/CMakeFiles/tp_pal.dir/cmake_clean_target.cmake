file(REMOVE_RECURSE
  "libtp_pal.a"
)
