# Empty compiler generated dependencies file for tp_devices.
# This may be replaced when dependencies are built.
