file(REMOVE_RECURSE
  "libtp_devices.a"
)
