file(REMOVE_RECURSE
  "CMakeFiles/tp_devices.dir/display.cpp.o"
  "CMakeFiles/tp_devices.dir/display.cpp.o.d"
  "CMakeFiles/tp_devices.dir/human.cpp.o"
  "CMakeFiles/tp_devices.dir/human.cpp.o.d"
  "CMakeFiles/tp_devices.dir/keyboard.cpp.o"
  "CMakeFiles/tp_devices.dir/keyboard.cpp.o.d"
  "libtp_devices.a"
  "libtp_devices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tp_devices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
