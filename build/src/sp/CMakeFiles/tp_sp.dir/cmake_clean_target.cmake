file(REMOVE_RECURSE
  "libtp_sp.a"
)
