# Empty compiler generated dependencies file for tp_sp.
# This may be replaced when dependencies are built.
