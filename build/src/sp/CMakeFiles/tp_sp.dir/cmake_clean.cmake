file(REMOVE_RECURSE
  "CMakeFiles/tp_sp.dir/deployment.cpp.o"
  "CMakeFiles/tp_sp.dir/deployment.cpp.o.d"
  "CMakeFiles/tp_sp.dir/fleet.cpp.o"
  "CMakeFiles/tp_sp.dir/fleet.cpp.o.d"
  "CMakeFiles/tp_sp.dir/service_provider.cpp.o"
  "CMakeFiles/tp_sp.dir/service_provider.cpp.o.d"
  "libtp_sp.a"
  "libtp_sp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tp_sp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
