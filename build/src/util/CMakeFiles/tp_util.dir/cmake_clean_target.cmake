file(REMOVE_RECURSE
  "libtp_util.a"
)
