file(REMOVE_RECURSE
  "CMakeFiles/tp_util.dir/bytes.cpp.o"
  "CMakeFiles/tp_util.dir/bytes.cpp.o.d"
  "CMakeFiles/tp_util.dir/log.cpp.o"
  "CMakeFiles/tp_util.dir/log.cpp.o.d"
  "CMakeFiles/tp_util.dir/rng.cpp.o"
  "CMakeFiles/tp_util.dir/rng.cpp.o.d"
  "CMakeFiles/tp_util.dir/serial.cpp.o"
  "CMakeFiles/tp_util.dir/serial.cpp.o.d"
  "CMakeFiles/tp_util.dir/sim_clock.cpp.o"
  "CMakeFiles/tp_util.dir/sim_clock.cpp.o.d"
  "libtp_util.a"
  "libtp_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tp_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
