file(REMOVE_RECURSE
  "CMakeFiles/tp_drtm.dir/late_launch.cpp.o"
  "CMakeFiles/tp_drtm.dir/late_launch.cpp.o.d"
  "CMakeFiles/tp_drtm.dir/platform.cpp.o"
  "CMakeFiles/tp_drtm.dir/platform.cpp.o.d"
  "libtp_drtm.a"
  "libtp_drtm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tp_drtm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
