file(REMOVE_RECURSE
  "libtp_drtm.a"
)
