# Empty dependencies file for tp_drtm.
# This may be replaced when dependencies are built.
