file(REMOVE_RECURSE
  "CMakeFiles/tp_tpm.dir/chip_profile.cpp.o"
  "CMakeFiles/tp_tpm.dir/chip_profile.cpp.o.d"
  "CMakeFiles/tp_tpm.dir/pcr.cpp.o"
  "CMakeFiles/tp_tpm.dir/pcr.cpp.o.d"
  "CMakeFiles/tp_tpm.dir/privacy_ca.cpp.o"
  "CMakeFiles/tp_tpm.dir/privacy_ca.cpp.o.d"
  "CMakeFiles/tp_tpm.dir/quote.cpp.o"
  "CMakeFiles/tp_tpm.dir/quote.cpp.o.d"
  "CMakeFiles/tp_tpm.dir/tpm_device.cpp.o"
  "CMakeFiles/tp_tpm.dir/tpm_device.cpp.o.d"
  "libtp_tpm.a"
  "libtp_tpm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tp_tpm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
