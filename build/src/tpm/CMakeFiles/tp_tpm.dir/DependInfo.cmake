
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tpm/chip_profile.cpp" "src/tpm/CMakeFiles/tp_tpm.dir/chip_profile.cpp.o" "gcc" "src/tpm/CMakeFiles/tp_tpm.dir/chip_profile.cpp.o.d"
  "/root/repo/src/tpm/pcr.cpp" "src/tpm/CMakeFiles/tp_tpm.dir/pcr.cpp.o" "gcc" "src/tpm/CMakeFiles/tp_tpm.dir/pcr.cpp.o.d"
  "/root/repo/src/tpm/privacy_ca.cpp" "src/tpm/CMakeFiles/tp_tpm.dir/privacy_ca.cpp.o" "gcc" "src/tpm/CMakeFiles/tp_tpm.dir/privacy_ca.cpp.o.d"
  "/root/repo/src/tpm/quote.cpp" "src/tpm/CMakeFiles/tp_tpm.dir/quote.cpp.o" "gcc" "src/tpm/CMakeFiles/tp_tpm.dir/quote.cpp.o.d"
  "/root/repo/src/tpm/tpm_device.cpp" "src/tpm/CMakeFiles/tp_tpm.dir/tpm_device.cpp.o" "gcc" "src/tpm/CMakeFiles/tp_tpm.dir/tpm_device.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/crypto/CMakeFiles/tp_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
