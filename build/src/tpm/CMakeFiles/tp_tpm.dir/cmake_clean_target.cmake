file(REMOVE_RECURSE
  "libtp_tpm.a"
)
