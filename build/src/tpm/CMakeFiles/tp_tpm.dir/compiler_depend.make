# Empty compiler generated dependencies file for tp_tpm.
# This may be replaced when dependencies are built.
