file(REMOVE_RECURSE
  "CMakeFiles/tp_core.dir/client.cpp.o"
  "CMakeFiles/tp_core.dir/client.cpp.o.d"
  "CMakeFiles/tp_core.dir/messages.cpp.o"
  "CMakeFiles/tp_core.dir/messages.cpp.o.d"
  "CMakeFiles/tp_core.dir/trusted_path_pal.cpp.o"
  "CMakeFiles/tp_core.dir/trusted_path_pal.cpp.o.d"
  "libtp_core.a"
  "libtp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
