file(REMOVE_RECURSE
  "libtp_crypto.a"
)
