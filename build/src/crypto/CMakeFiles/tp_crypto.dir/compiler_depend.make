# Empty compiler generated dependencies file for tp_crypto.
# This may be replaced when dependencies are built.
