file(REMOVE_RECURSE
  "CMakeFiles/tp_crypto.dir/aes.cpp.o"
  "CMakeFiles/tp_crypto.dir/aes.cpp.o.d"
  "CMakeFiles/tp_crypto.dir/bignum.cpp.o"
  "CMakeFiles/tp_crypto.dir/bignum.cpp.o.d"
  "CMakeFiles/tp_crypto.dir/drbg.cpp.o"
  "CMakeFiles/tp_crypto.dir/drbg.cpp.o.d"
  "CMakeFiles/tp_crypto.dir/hmac.cpp.o"
  "CMakeFiles/tp_crypto.dir/hmac.cpp.o.d"
  "CMakeFiles/tp_crypto.dir/modes.cpp.o"
  "CMakeFiles/tp_crypto.dir/modes.cpp.o.d"
  "CMakeFiles/tp_crypto.dir/rsa.cpp.o"
  "CMakeFiles/tp_crypto.dir/rsa.cpp.o.d"
  "CMakeFiles/tp_crypto.dir/sha1.cpp.o"
  "CMakeFiles/tp_crypto.dir/sha1.cpp.o.d"
  "CMakeFiles/tp_crypto.dir/sha256.cpp.o"
  "CMakeFiles/tp_crypto.dir/sha256.cpp.o.d"
  "libtp_crypto.a"
  "libtp_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tp_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
