file(REMOVE_RECURSE
  "CMakeFiles/tp_host.dir/adversary.cpp.o"
  "CMakeFiles/tp_host.dir/adversary.cpp.o.d"
  "libtp_host.a"
  "libtp_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tp_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
