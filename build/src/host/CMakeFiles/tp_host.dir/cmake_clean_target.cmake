file(REMOVE_RECURSE
  "libtp_host.a"
)
