# Empty dependencies file for tp_host.
# This may be replaced when dependencies are built.
