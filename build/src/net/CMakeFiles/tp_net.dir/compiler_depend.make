# Empty compiler generated dependencies file for tp_net.
# This may be replaced when dependencies are built.
