file(REMOVE_RECURSE
  "CMakeFiles/tp_net.dir/channel.cpp.o"
  "CMakeFiles/tp_net.dir/channel.cpp.o.d"
  "CMakeFiles/tp_net.dir/secure_channel.cpp.o"
  "CMakeFiles/tp_net.dir/secure_channel.cpp.o.d"
  "libtp_net.a"
  "libtp_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tp_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
