file(REMOVE_RECURSE
  "libtp_net.a"
)
