// Experiment F3: service-provider verifier throughput (real time).
//
// The server-side scalability claim: accepting a trusted-path
// confirmation costs the SP one RSA verify plus table bookkeeping, so a
// single core sustains thousands of confirmations per second -- the
// trusted path moves no bottleneck to the server.
//
// The measurements:
//   1. BM_ConfirmationVerify      -- the crypto kernel alone (statement
//                                    rebuild + RSA verify), items/s;
//   2. BM_EcdsaConfirmationVerify -- the same kernel with the TPM 2.0
//                                    backend's P-256 signature (F9: the
//                                    per-confirmation crypto drops by
//                                    the RSA-2048/ECDSA verify ratio);
//   3. BM_SpAcceptPath            -- full complete_transaction on a
//                                    corpus of GENUINE confirmations,
//                                    pre-generated through real PAL
//                                    sessions outside the timing loop,
//                                    for a tpm12, tpm2 and mixed 50/50
//                                    client population;
//   4. BM_SpRejectPath            -- full bookkeeping + failed verify
//                                    (the attack-flood case), scaling in
//                                    the number of enrolled clients.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <memory>
#include <span>
#include <vector>

#include "core/trusted_path_pal.h"
#include "crypto/ecdsa.h"
#include "crypto/rsa.h"
#include "devices/human.h"
#include "pal/session.h"
#include "sp/service_provider.h"
#include "tpm/privacy_ca.h"

using namespace tp;
using namespace tp::core;

namespace {

/// Types whatever code the PAL displays (a perfectly obedient user).
class ScriptedCodeAgent : public pal::UserAgent {
 public:
  std::optional<SimDuration> on_prompt(const devices::DisplayContent& screen,
                                       devices::Keyboard& kb) override {
    kb.press_line(devices::KeySource::kPhysical,
                  screen.find_field(devices::kFieldCode));
    return SimDuration::seconds(3);
  }
};

/// One SP serving a small population of enrolled platforms -- one per
/// entry of `backends` -- with helpers to mint genuine confirmations
/// through real PAL sessions. {kTpm12} reproduces the seed fixture;
/// {kTpm12, kTpm2} is the mid-migration 50/50 fleet.
struct Fixture {
  explicit Fixture(std::vector<tpm::QuoteFormat> backends)
      : ca(bytes_of("f3-ca"), 1024), sp(make_config(ca)) {
    for (std::size_t m = 0; m < backends.size(); ++m) {
      Member member;
      member.id = "client-" + std::to_string(m);
      drtm::PlatformConfig pc;
      pc.platform_id = member.id;
      pc.seed = bytes_of("f3-platform-" + std::to_string(m));
      pc.tpm_key_bits = 1024;
      pc.backend = backends[m];
      member.platform = std::make_unique<drtm::Platform>(pc);
      member.driver =
          std::make_unique<pal::SessionDriver>(*member.platform);
      member.driver->set_user_agent(&agent);

      const EnrollChallenge challenge =
          sp.begin_enrollment(EnrollBegin{member.id});
      PalEnrollInput in;
      in.nonce = challenge.nonce;
      in.key_bits = 1024;
      auto session = member.driver->run(make_trusted_path_pal(), in.marshal());
      auto out = PalEnrollOutput::unmarshal(session.value().output);
      member.sealed_key = out.value().sealed_key;
      EnrollComplete complete;
      complete.client_id = member.id;
      complete.format = backends[m];
      complete.confirmation_pubkey = out.value().pubkey;
      complete.quote = out.value().quote;
      if (backends[m] == tpm::QuoteFormat::kTpm2) {
        complete.aik_certificate =
            ca.certify_key(member.id, tpm::AttestationKey::of(
                                          member.platform->tpm2().ak_public()))
                .serialize();
      } else {
        complete.aik_certificate =
            ca.certify(member.id, member.platform->tpm().aik_public())
                .serialize();
      }
      if (!sp.complete_enrollment(complete).accepted) std::abort();
      members.push_back(std::move(member));
    }
  }

  static sp::SpConfig make_config(const tpm::PrivacyCa& ca) {
    sp::SpConfig cfg;
    cfg.golden_pcr17 = golden_pcr17();
    cfg.ca_public = ca.public_key();
    cfg.accepted_policies = {
        attestation_policy(drtm::DrtmTechnology::kAmdSkinit),
        attestation_policy(drtm::DrtmTechnology::kAmdSkinit, {},
                           tpm::QuoteFormat::kTpm2),
    };
    return cfg;
  }

  /// Mints one genuine (pending-at-SP, signed) confirmation; members
  /// take turns, so a two-member fixture interleaves 1.2 and 2.0
  /// signatures 50/50.
  TxConfirm mint(std::uint64_t i) {
    Member& member = members[i % members.size()];
    TxSubmit submit{member.id, "pay " + std::to_string(i), Bytes(64, 1)};
    const TxChallenge challenge = sp.begin_transaction(submit);
    PalConfirmInput in;
    in.tx_summary = submit.summary;
    in.tx_digest = submit.digest();
    in.nonce = challenge.nonce;
    in.sealed_key = member.sealed_key;
    auto session = member.driver->run(make_trusted_path_pal(), in.marshal());
    auto out = PalConfirmOutput::unmarshal(session.value().output);
    TxConfirm confirm;
    confirm.client_id = member.id;
    confirm.tx_id = challenge.tx_id;
    confirm.verdict = out.value().verdict;
    confirm.signature = out.value().signature;
    return confirm;
  }

  struct Member {
    std::string id;
    std::unique_ptr<drtm::Platform> platform;
    std::unique_ptr<pal::SessionDriver> driver;
    Bytes sealed_key;
  };

  tpm::PrivacyCa ca;
  sp::ServiceProvider sp;
  ScriptedCodeAgent agent;
  std::vector<Member> members;
};

}  // namespace

static void BM_ConfirmationVerify(benchmark::State& state) {
  const std::size_t key_bits = static_cast<std::size_t>(state.range(0));
  auto drbg = std::make_shared<crypto::HmacDrbg>(bytes_of("f3v"));
  auto rand = [drbg](std::size_t len) { return drbg->generate(len); };
  const crypto::RsaPrivateKey key = crypto::rsa_generate(key_bits, rand);

  TxSubmit submit{"c", "pay 10", Bytes(64, 1)};
  const Bytes nonce = rand(20);
  const Bytes statement =
      confirmation_statement(submit.digest(), nonce, Verdict::kConfirmed);
  const Bytes sig = crypto::rsa_sign(key, crypto::HashAlg::kSha256, statement);
  const crypto::RsaPublicKey pk = key.public_key();

  for (auto _ : state) {
    const Bytes st =
        confirmation_statement(submit.digest(), nonce, Verdict::kConfirmed);
    benchmark::DoNotOptimize(
        crypto::rsa_verify(pk, crypto::HashAlg::kSha256, st, sig));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ConfirmationVerify)->Arg(1024)->Arg(2048);

static void BM_ConfirmationVerifyCtx(benchmark::State& state) {
  // The fast path the SP actually runs since the enrollment-time
  // RsaVerifyContext cache: same statement rebuild + verify as
  // BM_ConfirmationVerify, minus the per-call Montgomery setup.
  const std::size_t key_bits = static_cast<std::size_t>(state.range(0));
  auto drbg = std::make_shared<crypto::HmacDrbg>(bytes_of("f3v"));
  auto rand = [drbg](std::size_t len) { return drbg->generate(len); };
  const crypto::RsaPrivateKey key = crypto::rsa_generate(key_bits, rand);

  TxSubmit submit{"c", "pay 10", Bytes(64, 1)};
  const Bytes nonce = rand(20);
  const Bytes statement =
      confirmation_statement(submit.digest(), nonce, Verdict::kConfirmed);
  const Bytes sig = crypto::rsa_sign(key, crypto::HashAlg::kSha256, statement);
  const crypto::RsaVerifyContext ctx(key.public_key());

  for (auto _ : state) {
    const Bytes st =
        confirmation_statement(submit.digest(), nonce, Verdict::kConfirmed);
    benchmark::DoNotOptimize(ctx.verify(crypto::HashAlg::kSha256, st, sig));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("cached per-key verify ctx");
}
BENCHMARK(BM_ConfirmationVerifyCtx)->Arg(1024)->Arg(2048);

static void BM_EcdsaConfirmationVerify(benchmark::State& state) {
  // The TPM 2.0 backend's crypto kernel: same statement rebuild, P-256
  // signature. Compare against BM_ConfirmationVerify/2048 for F9.
  auto drbg = std::make_shared<crypto::HmacDrbg>(bytes_of("f3e"));
  auto rand = [drbg](std::size_t len) { return drbg->generate(len); };
  const crypto::EcdsaPrivateKey key = crypto::ecdsa_generate(rand);

  TxSubmit submit{"c", "pay 10", Bytes(64, 1)};
  const Bytes nonce = rand(20);
  const Bytes statement =
      confirmation_statement(submit.digest(), nonce, Verdict::kConfirmed);
  const Bytes sig = crypto::ecdsa_sign(key, statement);
  const crypto::EcdsaPublicKey pk = key.public_key();

  for (auto _ : state) {
    const Bytes st =
        confirmation_statement(submit.digest(), nonce, Verdict::kConfirmed);
    benchmark::DoNotOptimize(crypto::ecdsa_verify(pk, st, sig));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EcdsaConfirmationVerify);

static void BM_EcdsaConfirmationVerifyCtx(benchmark::State& state) {
  // The fast path the SP runs for an enrolled 2.0 client: the
  // EcdsaVerifyContext caches the public point's window table, so the
  // second scalar multiplication is table lookups like the first.
  auto drbg = std::make_shared<crypto::HmacDrbg>(bytes_of("f3e"));
  auto rand = [drbg](std::size_t len) { return drbg->generate(len); };
  const crypto::EcdsaPrivateKey key = crypto::ecdsa_generate(rand);

  TxSubmit submit{"c", "pay 10", Bytes(64, 1)};
  const Bytes nonce = rand(20);
  const Bytes statement =
      confirmation_statement(submit.digest(), nonce, Verdict::kConfirmed);
  const Bytes sig = crypto::ecdsa_sign(key, statement);
  const crypto::EcdsaVerifyContext ctx(key.public_key());

  for (auto _ : state) {
    const Bytes st =
        confirmation_statement(submit.digest(), nonce, Verdict::kConfirmed);
    benchmark::DoNotOptimize(ctx.verify(st, sig));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("cached per-key verify ctx");
}
BENCHMARK(BM_EcdsaConfirmationVerifyCtx);

static void BM_SpAcceptPath(benchmark::State& state) {
  // Arg 0: all-1.2 population (the seed bench). Arg 1: all-2.0.
  // Arg 2: mixed 50/50 -- one SP verifying RSA and ECDSA side by side.
  static Fixture tpm12_fixture({tpm::QuoteFormat::kTpm12});
  static Fixture tpm2_fixture({tpm::QuoteFormat::kTpm2});
  static Fixture mixed_fixture(
      {tpm::QuoteFormat::kTpm12, tpm::QuoteFormat::kTpm2});
  Fixture* fixtures[] = {&tpm12_fixture, &tpm2_fixture, &mixed_fixture};
  const char* labels[] = {"tpm12 accepts", "tpm2 accepts",
                          "mixed 50/50 accepts"};
  Fixture& fixture = *fixtures[state.range(0)];
  constexpr int kBatch = 64;
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<TxConfirm> corpus;
    corpus.reserve(kBatch);
    for (int i = 0; i < kBatch; ++i) {
      corpus.push_back(fixture.mint(state.iterations() * kBatch +
                                    static_cast<std::uint64_t>(i)));
    }
    state.ResumeTiming();
    for (const auto& confirm : corpus) {
      benchmark::DoNotOptimize(fixture.sp.complete_transaction(confirm));
    }
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
  state.SetLabel(labels[state.range(0)]);
}
BENCHMARK(BM_SpAcceptPath)->Arg(0)->Arg(1)->Arg(2)->Unit(
    benchmark::kMillisecond);

static void BM_SpAcceptBatch(benchmark::State& state) {
  // Experiment F10: the batched accept pipeline against BM_SpAcceptPath
  // (same genuine-confirmation corpus, same direct-call level), in
  // verify batches of range(1): each chunk shares one gathered
  // signature pass (multi-buffer statement hashing, batch-inverted
  // interleaved ECDSA walks, gathered RSA screens) and one metrics
  // flush. range(0): 0 = all-1.2 (RSA), 1 = all-2.0 (ECDSA). Chunk
  // size 1 is the no-batching control: the pipeline with nothing to
  // amortize.
  static Fixture rsa_fixture({tpm::QuoteFormat::kTpm12});
  static Fixture ec_fixture({tpm::QuoteFormat::kTpm2});
  Fixture& fixture = *(state.range(0) == 0 ? &rsa_fixture : &ec_fixture);
  const std::size_t chunk = static_cast<std::size_t>(state.range(1));
  constexpr std::size_t kCorpus = 64;
  std::uint64_t minted = 0;
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<TxConfirm> corpus;
    corpus.reserve(kCorpus);
    for (std::size_t i = 0; i < kCorpus; ++i) {
      corpus.push_back(fixture.mint(minted++));
    }
    state.ResumeTiming();
    for (std::size_t off = 0; off < corpus.size(); off += chunk) {
      const std::size_t n = std::min(chunk, corpus.size() - off);
      benchmark::DoNotOptimize(fixture.sp.complete_transaction_batch(
          std::span<const TxConfirm>(corpus.data() + off, n)));
    }
  }
  state.SetItemsProcessed(state.iterations() * kCorpus);
  state.SetLabel(std::string(state.range(0) == 0 ? "rsa" : "ecdsa") +
                 " accepts, verify batch " + std::to_string(chunk));
}
BENCHMARK(BM_SpAcceptBatch)
    ->Args({0, 1})
    ->Args({0, 4})
    ->Args({0, 16})
    ->Args({0, 64})
    ->Args({1, 1})
    ->Args({1, 4})
    ->Args({1, 16})
    ->Args({1, 64})
    ->Unit(benchmark::kMillisecond);

static void BM_SpRejectPath(benchmark::State& state) {
  static Fixture fixture({tpm::QuoteFormat::kTpm12});
  const Bytes junk_sig(128, 0x5a);
  std::uint64_t i = 0;
  for (auto _ : state) {
    state.PauseTiming();
    TxSubmit submit{"client-0", "forged " + std::to_string(i++),
                    Bytes(64, 1)};
    const TxChallenge challenge = fixture.sp.begin_transaction(submit);
    state.ResumeTiming();

    TxConfirm confirm;
    confirm.client_id = "client-0";
    confirm.tx_id = challenge.tx_id;
    confirm.verdict = Verdict::kConfirmed;
    confirm.signature = junk_sig;
    benchmark::DoNotOptimize(fixture.sp.complete_transaction(confirm));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("forged confirmations rejected");
}
BENCHMARK(BM_SpRejectPath)->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
