// Experiment F3: service-provider verifier throughput (real time).
//
// The server-side scalability claim: accepting a trusted-path
// confirmation costs the SP one RSA verify plus table bookkeeping, so a
// single core sustains thousands of confirmations per second -- the
// trusted path moves no bottleneck to the server.
//
// Three measurements:
//   1. BM_ConfirmationVerify      -- the crypto kernel alone (statement
//                                    rebuild + RSA verify), items/s;
//   2. BM_SpAcceptPath            -- full complete_transaction on a
//                                    corpus of GENUINE confirmations,
//                                    pre-generated through real PAL
//                                    sessions outside the timing loop;
//   3. BM_SpRejectPath            -- full bookkeeping + failed verify
//                                    (the attack-flood case), scaling in
//                                    the number of enrolled clients.
#include <benchmark/benchmark.h>

#include <memory>

#include <vector>

#include "core/trusted_path_pal.h"
#include "crypto/rsa.h"
#include "devices/human.h"
#include "pal/session.h"
#include "sp/service_provider.h"
#include "tpm/privacy_ca.h"

using namespace tp;
using namespace tp::core;

namespace {

/// Types whatever code the PAL displays (a perfectly obedient user).
class ScriptedCodeAgent : public pal::UserAgent {
 public:
  std::optional<SimDuration> on_prompt(const devices::DisplayContent& screen,
                                       devices::Keyboard& kb) override {
    kb.press_line(devices::KeySource::kPhysical,
                  screen.find_field(devices::kFieldCode));
    return SimDuration::seconds(3);
  }
};

/// One enrolled platform + SP, with helpers to mint genuine
/// confirmations through real PAL sessions.
struct Fixture {
  Fixture()
      : ca(bytes_of("f3-ca"), 1024),
        sp(make_config(ca)),
        platform(make_platform()),
        driver(platform) {
    driver.set_user_agent(&agent);
    const EnrollChallenge challenge =
        sp.begin_enrollment(EnrollBegin{"client-0"});
    PalEnrollInput in;
    in.nonce = challenge.nonce;
    in.key_bits = 1024;
    auto session = driver.run(make_trusted_path_pal(), in.marshal());
    auto out = PalEnrollOutput::unmarshal(session.value().output);
    sealed_key = out.value().sealed_key;
    EnrollComplete complete;
    complete.client_id = "client-0";
    complete.confirmation_pubkey = out.value().pubkey;
    complete.quote = out.value().quote;
    complete.aik_certificate =
        ca.certify("client-0", platform.tpm().aik_public()).serialize();
    if (!sp.complete_enrollment(complete).accepted) std::abort();
  }

  static sp::SpConfig make_config(const tpm::PrivacyCa& ca) {
    sp::SpConfig cfg;
    cfg.golden_pcr17 = golden_pcr17();
    cfg.ca_public = ca.public_key();
    return cfg;
  }

  static drtm::PlatformConfig make_platform() {
    drtm::PlatformConfig pc;
    pc.seed = bytes_of("f3-platform");
    pc.tpm_key_bits = 1024;
    return pc;
  }

  /// Mints one genuine (pending-at-SP, signed) confirmation.
  TxConfirm mint(std::uint64_t i) {
    TxSubmit submit{"client-0", "pay " + std::to_string(i), Bytes(64, 1)};
    const TxChallenge challenge = sp.begin_transaction(submit);
    PalConfirmInput in;
    in.tx_summary = submit.summary;
    in.tx_digest = submit.digest();
    in.nonce = challenge.nonce;
    in.sealed_key = sealed_key;
    auto session = driver.run(make_trusted_path_pal(), in.marshal());
    auto out = PalConfirmOutput::unmarshal(session.value().output);
    TxConfirm confirm;
    confirm.client_id = "client-0";
    confirm.tx_id = challenge.tx_id;
    confirm.verdict = out.value().verdict;
    confirm.signature = out.value().signature;
    return confirm;
  }

  tpm::PrivacyCa ca;
  sp::ServiceProvider sp;
  drtm::Platform platform;
  pal::SessionDriver driver;
  ScriptedCodeAgent agent;
  Bytes sealed_key;
};

}  // namespace

static void BM_ConfirmationVerify(benchmark::State& state) {
  const std::size_t key_bits = static_cast<std::size_t>(state.range(0));
  auto drbg = std::make_shared<crypto::HmacDrbg>(bytes_of("f3v"));
  auto rand = [drbg](std::size_t len) { return drbg->generate(len); };
  const crypto::RsaPrivateKey key = crypto::rsa_generate(key_bits, rand);

  TxSubmit submit{"c", "pay 10", Bytes(64, 1)};
  const Bytes nonce = rand(20);
  const Bytes statement =
      confirmation_statement(submit.digest(), nonce, Verdict::kConfirmed);
  const Bytes sig = crypto::rsa_sign(key, crypto::HashAlg::kSha256, statement);
  const crypto::RsaPublicKey pk = key.public_key();

  for (auto _ : state) {
    const Bytes st =
        confirmation_statement(submit.digest(), nonce, Verdict::kConfirmed);
    benchmark::DoNotOptimize(
        crypto::rsa_verify(pk, crypto::HashAlg::kSha256, st, sig));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ConfirmationVerify)->Arg(1024)->Arg(2048);

static void BM_ConfirmationVerifyCtx(benchmark::State& state) {
  // The fast path the SP actually runs since the enrollment-time
  // RsaVerifyContext cache: same statement rebuild + verify as
  // BM_ConfirmationVerify, minus the per-call Montgomery setup.
  const std::size_t key_bits = static_cast<std::size_t>(state.range(0));
  auto drbg = std::make_shared<crypto::HmacDrbg>(bytes_of("f3v"));
  auto rand = [drbg](std::size_t len) { return drbg->generate(len); };
  const crypto::RsaPrivateKey key = crypto::rsa_generate(key_bits, rand);

  TxSubmit submit{"c", "pay 10", Bytes(64, 1)};
  const Bytes nonce = rand(20);
  const Bytes statement =
      confirmation_statement(submit.digest(), nonce, Verdict::kConfirmed);
  const Bytes sig = crypto::rsa_sign(key, crypto::HashAlg::kSha256, statement);
  const crypto::RsaVerifyContext ctx(key.public_key());

  for (auto _ : state) {
    const Bytes st =
        confirmation_statement(submit.digest(), nonce, Verdict::kConfirmed);
    benchmark::DoNotOptimize(ctx.verify(crypto::HashAlg::kSha256, st, sig));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("cached per-key verify ctx");
}
BENCHMARK(BM_ConfirmationVerifyCtx)->Arg(1024)->Arg(2048);

static void BM_SpAcceptPath(benchmark::State& state) {
  static Fixture fixture;  // shared across runs: enrollment amortized
  constexpr int kBatch = 64;
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<TxConfirm> corpus;
    corpus.reserve(kBatch);
    for (int i = 0; i < kBatch; ++i) {
      corpus.push_back(fixture.mint(state.iterations() * kBatch +
                                    static_cast<std::uint64_t>(i)));
    }
    state.ResumeTiming();
    for (const auto& confirm : corpus) {
      benchmark::DoNotOptimize(fixture.sp.complete_transaction(confirm));
    }
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
  state.SetLabel("genuine confirmations accepted");
}
BENCHMARK(BM_SpAcceptPath)->Unit(benchmark::kMillisecond);

static void BM_SpRejectPath(benchmark::State& state) {
  static Fixture fixture;
  const Bytes junk_sig(128, 0x5a);
  std::uint64_t i = 0;
  for (auto _ : state) {
    state.PauseTiming();
    TxSubmit submit{"client-0", "forged " + std::to_string(i++),
                    Bytes(64, 1)};
    const TxChallenge challenge = fixture.sp.begin_transaction(submit);
    state.ResumeTiming();

    TxConfirm confirm;
    confirm.client_id = "client-0";
    confirm.tx_id = challenge.tx_id;
    confirm.verdict = Verdict::kConfirmed;
    confirm.signature = junk_sig;
    benchmark::DoNotOptimize(fixture.sp.complete_transaction(confirm));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("forged confirmations rejected");
}
BENCHMARK(BM_SpRejectPath)->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
