// Experiment F2: forged-transaction acceptance rate by defence.
//
// The paper's security headline, quantified: a transaction-generator
// adversary of sweeping strength attacks a service protected by
//   (a) nothing,
//   (b) captchas (at two distortion levels), and
//   (c) the uni-directional trusted path.
// Acceptance of a FORGED transaction = attacker win. For the trusted
// path, every mechanical strategy in the malware kit is run; the one
// human-dependent strategy (transaction substitution) is reported
// separately as the documented residual, swept over user attention.
// The symbolic renditions of the network-level strategies
// (host/adversary.h) run alongside as a cross-check: the model checker's
// core must defeat exactly what the real stack defeats.
//
// --json=PATH     also emit the table as JSON for the experiment suite
#include <cstdio>
#include <string>
#include <vector>

#include "captcha/captcha.h"
#include "host/adversary.h"
#include "pal/human_agent.h"
#include "sp/deployment.h"

using namespace tp;

namespace {

constexpr int kTrials = 300;

// (a) No defence: an SP in pre-trusted-path mode executes any
// well-formed request the malware sends.
double no_defense_rate(std::uint64_t seed) {
  sp::SpConfig cfg;
  cfg.golden_pcr17 = core::golden_pcr17();
  cfg.ca_public = crypto::RsaPublicKey{crypto::BigInt(3), crypto::BigInt(3)};
  cfg.require_trusted_path = false;
  sp::ServiceProvider sp(cfg);
  SimRng rng(seed);
  int wins = 0;
  for (int i = 0; i < kTrials; ++i) {
    const core::TxSubmit submit{"victim", "forged #" + std::to_string(i),
                                rng.next_bytes(32)};
    const auto challenge = sp.begin_transaction(submit);
    core::TxConfirm confirm;
    confirm.client_id = "victim";
    confirm.tx_id = challenge.tx_id;
    confirm.verdict = core::Verdict::kConfirmed;
    confirm.signature = rng.next_bytes(64);  // garbage; nobody checks
    if (sp.complete_transaction(confirm).accepted) ++wins;
  }
  return static_cast<double>(wins) / kTrials;
}

// (b) Captcha: the bot wins iff it solves the captcha.
double captcha_rate(double attacker_strength, double distortion,
                    std::uint64_t seed) {
  captcha::CaptchaService service(bytes_of("f2"));
  captcha::OcrAttacker attacker(attacker_strength, SimRng(seed));
  int wins = 0;
  for (int i = 0; i < kTrials; ++i) {
    const auto challenge = service.issue(distortion);
    if (service.verify(challenge.id, attacker.attempt(challenge)).ok()) {
      ++wins;
    }
  }
  return static_cast<double>(wins) / kTrials;
}

// (c) Trusted path, mechanical attacks (no human involvement).
double trusted_path_rate(std::uint64_t seed) {
  sp::DeploymentConfig cfg;
  cfg.client_id = "victim";
  cfg.seed = bytes_of("f2-tp:" + std::to_string(seed));
  cfg.tpm_key_bits = 768;
  cfg.client_key_bits = 768;
  sp::Deployment world(cfg);

  devices::HumanParams hp;
  hp.typo_prob = 0.0;
  pal::HumanAgent benign(devices::HumanModel(hp, SimRng(seed)), "");
  world.client().set_user_agent(&benign);
  if (!world.client().enroll().ok()) std::abort();

  host::MalwareKit malware(world.platform(), world.client_endpoint(),
                           "victim", world.client().sealed_key_blob(),
                           SimRng(seed * 31 + 7));
  int wins = 0, attempts = 0;
  for (int i = 0; i < kTrials / 4; ++i) {
    const std::string tx = "forged payment #" + std::to_string(i);
    const Bytes payload = bytes_of("forged");
    if (malware.forge_signature(tx, payload).sp_accepted) ++wins;
    if (malware.confirm_without_signature(tx, payload).sp_accepted) ++wins;
    if (malware.inject_keystrokes(tx, payload).sp_accepted) ++wins;
    if (malware.run_tampered_pal(tx, payload).sp_accepted) ++wins;
    attempts += 4;
  }
  return static_cast<double>(wins) / attempts;
}

// (c') Trusted path residual: transaction substitution vs user attention.
double substitution_rate(double attention, std::uint64_t seed) {
  sp::DeploymentConfig cfg;
  cfg.client_id = "victim";
  cfg.seed = bytes_of("f2-sub:" + std::to_string(seed));
  cfg.tpm_key_bits = 768;
  cfg.client_key_bits = 768;
  sp::Deployment world(cfg);

  devices::HumanParams hp;
  hp.typo_prob = 0.0;
  pal::HumanAgent benign(devices::HumanModel(hp, SimRng(seed)), "");
  world.client().set_user_agent(&benign);
  if (!world.client().enroll().ok()) std::abort();

  host::MalwareKit malware(world.platform(), world.client_endpoint(),
                           "victim", world.client().sealed_key_blob(),
                           SimRng(seed * 131 + 5));
  devices::HumanParams victim_params;
  victim_params.typo_prob = 0.0;
  victim_params.attention = attention;
  int wins = 0;
  const int kSubTrials = 60;
  for (int i = 0; i < kSubTrials; ++i) {
    pal::HumanAgent victim(
        devices::HumanModel(victim_params, SimRng(seed + i)),
        "pay 10 EUR to bob");
    if (malware
            .substitute_transaction(victim, "pay 9999 to mallory",
                                    bytes_of("f"))
            .sp_accepted) {
      ++wins;
    }
  }
  return static_cast<double>(wins) / kSubTrials;
}

/// The same mechanical strategies against the SYMBOLIC protocol core:
/// every model::Action script must come back not-accepted on the sound
/// core, in lockstep with the real-stack rows above.
double model_rate() {
  int wins = 0;
  for (std::size_t i = 0; i < host::kAttackStrategyCount; ++i) {
    const auto strategy = static_cast<host::AttackStrategy>(i);
    if (host::run_attack_in_model(strategy).sp_accepted) ++wins;
  }
  return static_cast<double>(wins) / host::kAttackStrategyCount;
}

struct DefenceRow {
  std::string label;
  double rates[3] = {0, 0, 0};
};

void write_json(const std::string& path,
                const std::vector<DefenceRow>& defences,
                const std::vector<std::pair<double, double>>& residual) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"experiment\": \"F2\",\n  \"defences\": [\n");
  for (std::size_t i = 0; i < defences.size(); ++i) {
    const DefenceRow& d = defences[i];
    std::fprintf(f,
                 "    {\"defence\": \"%s\", \"weak\": %.3f, \"strong\": %.3f, "
                 "\"outsourced\": %.3f}%s\n",
                 d.label.c_str(), d.rates[0], d.rates[1], d.rates[2],
                 i + 1 < defences.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"substitution_residual\": [\n");
  for (std::size_t i = 0; i < residual.size(); ++i) {
    std::fprintf(f, "    {\"attention\": %.1f, \"acceptance\": %.3f}%s\n",
                 residual[i].first, residual[i].second,
                 i + 1 < residual.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) json_path = arg.substr(7);
  }

  std::printf("=== F2: forged-transaction acceptance rate by defence ===\n\n");

  std::printf("%-26s  %10s  %10s  %10s\n", "defence", "weak bot",
              "strong bot", "outsourced");
  const double strengths[] = {0.30, 0.65, 0.95};
  std::vector<DefenceRow> defences;

  DefenceRow none{"none", {}};
  for (std::size_t i = 0; i < 3; ++i) none.rates[i] = no_defense_rate(20 + i);
  defences.push_back(none);

  for (double distortion : {0.3, 0.7}) {
    char label[64];
    std::snprintf(label, sizeof label, "captcha (distortion %.1f)",
                  distortion);
    DefenceRow row{label, {}};
    for (std::size_t i = 0; i < 3; ++i) {
      row.rates[i] = captcha_rate(strengths[i], distortion, 40 + i);
    }
    defences.push_back(row);
  }

  DefenceRow tp{"trusted path (mechanical)", {}};
  for (std::size_t i = 0; i < 3; ++i) tp.rates[i] = trusted_path_rate(70 + i);
  defences.push_back(tp);

  // Attacker strength has no symbolic rendition -- the Dolev-Yao
  // attacker is already maximal -- so the model row is flat.
  DefenceRow model_row{"trusted path (model)", {}};
  const double symbolic = model_rate();
  for (std::size_t i = 0; i < 3; ++i) model_row.rates[i] = symbolic;
  defences.push_back(model_row);

  for (const DefenceRow& row : defences) {
    std::printf("%-26s", row.label.c_str());
    for (std::size_t i = 0; i < 3; ++i) std::printf("  %10.3f", row.rates[i]);
    std::printf("\n");
  }

  std::printf("\n--- trusted-path residual: substitution vs user attention ---\n");
  std::printf("%-26s  %10s\n", "user attention", "acceptance");
  std::vector<std::pair<double, double>> residual;
  for (double attention : {0.0, 0.5, 0.9, 1.0}) {
    residual.emplace_back(attention, substitution_rate(attention, 90));
    std::printf("%-26.1f  %10.3f\n", attention, residual.back().second);
  }

  if (!json_path.empty()) {
    write_json(json_path, defences, residual);
    std::printf("\nwrote %s\n", json_path.c_str());
  }

  std::printf(
      "\nShape check: captchas degrade from ~blocking weak OCR to useless\n"
      "against outsourced solving; the trusted path holds at 0.000 against\n"
      "every mechanical attacker regardless of strength. The only residual\n"
      "is the human who does not read the trusted screen.\n");
  return 0;
}
