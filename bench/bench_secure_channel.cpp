// Experiment F6: secure-transport data plane (real time).
//
// The deployment wraps the client<->SP link in the authenticated-
// encryption channel (DeploymentConfig::secure_transport), so every
// protocol frame pays one AES-256-CTR pass plus one HMAC-SHA256 per
// direction. This benchmark pins down what that costs:
//
//   1. BM_SecureExchange   -- one request/response round trip through an
//                             established session vs payload size: two
//                             record seals + two opens (both directions).
//   2. BM_SecureHandshake  -- session establishment (RSA key transport +
//                             key derivation + ack record).
//   3. BM_ConfirmE2E       -- a full CONFIRM session through the
//                             Deployment, secure transport off vs on:
//                             the transport's end-to-end overhead on the
//                             paper's per-transaction path.
#include <benchmark/benchmark.h>

#include <memory>

#include "crypto/drbg.h"
#include "crypto/rsa.h"
#include "devices/human.h"
#include "net/secure_channel.h"
#include "pal/human_agent.h"
#include "sp/deployment.h"

using namespace tp;

namespace {

const crypto::RsaPrivateKey& server_key() {
  static const crypto::RsaPrivateKey key = [] {
    auto drbg = std::make_shared<crypto::HmacDrbg>(bytes_of("f6-server"));
    return crypto::rsa_generate(
        1024, [drbg](std::size_t n) { return drbg->generate(n); });
  }();
  return key;
}

/// Client + server transports over a zero-latency simulated link; the
/// server echoes the request so both directions carry the payload.
struct ChannelFixture {
  ChannelFixture()
      : link(net::NetParams{}, clock, SimRng(6)),
        server(server_key(),
               [](BytesView req) { return Bytes(req.begin(), req.end()); }),
        client(link.a(), server_key().public_key(), bytes_of("f6-seed")) {
    link.b().set_service(
        [this](BytesView frame) { return server.handle(frame); });
  }

  SimClock clock;
  net::Link link;
  net::SecureServerTransport server;
  net::SecureClientTransport client;
};

void BM_SecureExchange(benchmark::State& state) {
  ChannelFixture f;
  const Bytes payload(static_cast<std::size_t>(state.range(0)), 0x5a);
  if (!f.client.exchange(payload).ok()) std::abort();  // handshake
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.client.exchange(payload));
  }
  if (f.server.records_rejected() != 0) std::abort();
  // Both directions carry the payload: 2 seals + 2 opens per iteration.
  state.SetBytesProcessed(state.iterations() * state.range(0) * 2);
  state.SetLabel("2 seals + 2 opens per exchange");
}
BENCHMARK(BM_SecureExchange)->Arg(64)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_SecureHandshake(benchmark::State& state) {
  SimClock clock;
  net::Link link(net::NetParams{}, clock, SimRng(7));
  net::SecureServerTransport server(
      server_key(), [](BytesView) { return bytes_of("ok"); });
  link.b().set_service(
      [&server](BytesView frame) { return server.handle(frame); });
  for (auto _ : state) {
    net::SecureClientTransport client(link.a(), server_key().public_key(),
                                      bytes_of("f6-hs"));
    if (!client.exchange(bytes_of("ping")).ok()) std::abort();
    benchmark::DoNotOptimize(client.handshaken());
  }
  state.SetLabel("RSA-1024 key transport + key derivation");
}
BENCHMARK(BM_SecureHandshake)->Unit(benchmark::kMicrosecond);

void BM_ConfirmE2E(benchmark::State& state) {
  sp::DeploymentConfig cfg;
  cfg.client_id = "f6-client";
  cfg.seed = bytes_of("f6-e2e");
  cfg.tpm_key_bits = 1024;
  cfg.client_key_bits = 1024;
  cfg.secure_transport = state.range(0) != 0;
  sp::Deployment world(cfg);

  devices::HumanParams hp;
  hp.typo_prob = 0.0;
  pal::HumanAgent agent(devices::HumanModel(hp, SimRng(8)), "pay 10 EUR");
  world.client().set_user_agent(&agent);
  if (!world.client().enroll().ok()) std::abort();

  const Bytes payload(1024, 0x5a);
  for (auto _ : state) {
    auto outcome = world.client().submit_transaction("pay 10 EUR", payload);
    if (!outcome.ok() || !outcome.value().accepted) std::abort();
    benchmark::DoNotOptimize(outcome);
  }
  state.SetLabel(cfg.secure_transport ? "secure transport ON"
                                      : "secure transport OFF");
}
BENCHMARK(BM_ConfirmE2E)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
