// Experiment T4: crypto primitive microbenchmarks (real time).
//
// Grounds the cost model: the SP-side verification path is ordinary
// software crypto, so its real throughput on this host is what the
// scalability experiment (F3) builds on.
#include <benchmark/benchmark.h>

#include <memory>

#include "crypto/aes.h"
#include "crypto/bignum.h"
#include "crypto/drbg.h"
#include "crypto/hmac.h"
#include "crypto/modes.h"
#include "crypto/rsa.h"
#include "crypto/sha1.h"
#include "crypto/sha256.h"

using namespace tp;
using namespace tp::crypto;

namespace {

std::function<Bytes(std::size_t)> entropy(const std::string& label) {
  auto drbg = std::make_shared<HmacDrbg>(bytes_of("bench:" + label));
  return [drbg](std::size_t n) { return drbg->generate(n); };
}

const RsaPrivateKey& key_of(std::size_t bits) {
  static const RsaPrivateKey k1024 =
      rsa_generate(1024, entropy("k1024"));
  static const RsaPrivateKey k2048 =
      rsa_generate(2048, entropy("k2048"));
  return bits == 1024 ? k1024 : k2048;
}

void BM_Sha1(benchmark::State& state) {
  const Bytes data(static_cast<std::size_t>(state.range(0)), 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha1::hash(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha1)->Arg(64)->Arg(4096)->Arg(65536);

void BM_Sha256(benchmark::State& state) {
  const Bytes data(static_cast<std::size_t>(state.range(0)), 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::hash(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(4096)->Arg(65536);

void BM_HmacSha256(benchmark::State& state) {
  const Bytes key(32, 0x11);
  const Bytes data(static_cast<std::size_t>(state.range(0)), 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hmac_sha256(key, data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HmacSha256)->Arg(64)->Arg(4096);

// Reusable context: the key midstates are computed once, so each MAC
// skips the two key-block compressions the one-shot pays per call.
void BM_HmacSha256Ctx(benchmark::State& state) {
  HmacSha256Ctx ctx(Bytes(32, 0x11));
  const Bytes data(static_cast<std::size_t>(state.range(0)), 0xab);
  std::array<std::uint8_t, kSha256DigestSize> mac;
  for (auto _ : state) {
    ctx.update(data);
    ctx.finalize_into(mac);
    benchmark::DoNotOptimize(mac);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HmacSha256Ctx)->Arg(64)->Arg(4096);

void BM_AesCbcEncrypt(benchmark::State& state) {
  const Aes aes(Bytes(32, 0x22));
  const Bytes iv(16, 0x01);
  const Bytes data(static_cast<std::size_t>(state.range(0)), 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cbc_encrypt(aes, iv, data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AesCbcEncrypt)->Arg(4096)->Arg(65536);

void BM_AesCtr(benchmark::State& state) {
  const Aes aes(Bytes(32, 0x22));
  const Bytes nonce(16, 0x01);
  const Bytes data(static_cast<std::size_t>(state.range(0)), 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctr_crypt(aes, nonce, data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AesCtr)->Arg(4096)->Arg(65536);

void BM_RsaSign(benchmark::State& state) {
  const auto& key = key_of(static_cast<std::size_t>(state.range(0)));
  const Bytes msg = bytes_of("confirmation statement");
  for (auto _ : state) {
    benchmark::DoNotOptimize(rsa_sign(key, HashAlg::kSha256, msg));
  }
}
BENCHMARK(BM_RsaSign)->Arg(1024)->Arg(2048);

void BM_RsaVerify(benchmark::State& state) {
  const auto& key = key_of(static_cast<std::size_t>(state.range(0)));
  const Bytes msg = bytes_of("confirmation statement");
  const Bytes sig = rsa_sign(key, HashAlg::kSha256, msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rsa_verify(key.public_key(), HashAlg::kSha256, msg, sig));
  }
}
BENCHMARK(BM_RsaVerify)->Arg(1024)->Arg(2048);

// The SP's hot path: one RsaVerifyContext per enrolled key, reused for
// every confirmation. Compare against BM_RsaVerify (per-call Montgomery
// setup) and BM_RsaVerifyCtxWindowed (the seed's windowed exponentiation,
// isolating the small-exponent win).
void BM_RsaVerifyCtx(benchmark::State& state) {
  const auto& key = key_of(static_cast<std::size_t>(state.range(0)));
  const RsaVerifyContext ctx(key.public_key());
  const Bytes msg = bytes_of("confirmation statement");
  const Bytes sig = rsa_sign(key, HashAlg::kSha256, msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.verify(HashAlg::kSha256, msg, sig));
  }
  state.SetLabel("cached per-key Montgomery ctx");
}
BENCHMARK(BM_RsaVerifyCtx)->Arg(1024)->Arg(2048);

void BM_RsaVerifyCtxWindowed(benchmark::State& state) {
  // e = 65537 forced through the 4-bit windowed path with a cached ctx:
  // the exponentiation the seed performed, minus its per-call setup.
  const auto& key = key_of(static_cast<std::size_t>(state.range(0)));
  const MontgomeryCtx ctx(key.n);
  const Bytes msg = bytes_of("confirmation statement");
  const Bytes sig = rsa_sign(key, HashAlg::kSha256, msg);
  const BigInt s = BigInt::from_bytes_be(sig);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.mod_exp_windowed(s, key.e));
  }
  state.SetLabel("windowed e=65537 (legacy path)");
}
BENCHMARK(BM_RsaVerifyCtxWindowed)->Arg(1024)->Arg(2048);

void BM_MontgomeryCtxSetup(benchmark::State& state) {
  // The per-verify cost the per-key cache removes (R^2 mod n division).
  const auto& key = key_of(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(MontgomeryCtx(key.n));
  }
}
BENCHMARK(BM_MontgomeryCtxSetup)->Arg(1024)->Arg(2048);

void BM_RsaKeygen(benchmark::State& state) {
  auto rand = entropy("keygen-bench");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rsa_generate(static_cast<std::size_t>(state.range(0)), rand));
  }
}
BENCHMARK(BM_RsaKeygen)->Arg(768)->Arg(1024)->Unit(benchmark::kMillisecond);

void BM_ModExp2048(benchmark::State& state) {
  auto rand = entropy("modexp");
  const BigInt m = key_of(2048).n;
  const BigInt base = BigInt::from_bytes_be(rand(256)) % m;
  const BigInt exp = BigInt::from_bytes_be(rand(256));
  for (auto _ : state) {
    benchmark::DoNotOptimize(BigInt::mod_exp(base, exp, m));
  }
  state.SetLabel("full 2048-bit exponent");
}
BENCHMARK(BM_ModExp2048)->Unit(benchmark::kMillisecond);

void BM_ModExpSmallExponent(benchmark::State& state) {
  // Small-exponent square-and-multiply vs the windowed path, same cached
  // ctx, e = 65537 (every RSA verify exponent in practice).
  auto rand = entropy("modexp-small");
  const BigInt m = key_of(2048).n;
  const MontgomeryCtx ctx(m);
  const BigInt base = BigInt::from_bytes_be(rand(256)) % m;
  const BigInt e65537(65537);
  const bool windowed = state.range(0) != 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(windowed ? ctx.mod_exp_windowed(base, e65537)
                                      : ctx.mod_exp(base, e65537));
  }
  state.SetLabel(windowed ? "windowed" : "small-exp fast path");
}
BENCHMARK(BM_ModExpSmallExponent)->Arg(0)->Arg(1);

void BM_HmacDrbg(benchmark::State& state) {
  HmacDrbg drbg(bytes_of("seed"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(drbg.generate(32));
  }
}
BENCHMARK(BM_HmacDrbg);

}  // namespace

BENCHMARK_MAIN();
