// Experiment F1: end-to-end confirmation latency vs transaction size.
//
// Sweeps the transaction payload from 256 B to 64 KiB on every chip and
// reports machine time (client session + network round trips) and total
// time including the human. The claim: latency is flat in transaction
// size -- the PAL hashes the payload once; everything else is constant --
// so the trusted path is as usable for a 64 KiB contract as for a
// one-line payment.
#include <cstdio>

#include "devices/human.h"
#include "pal/human_agent.h"
#include "sp/deployment.h"
#include "tpm/chip_profile.h"

using namespace tp;

namespace {

struct Point {
  double machine_ms;
  double total_ms;
};

Point run_once(const std::string& chip, std::size_t payload_size) {
  sp::DeploymentConfig cfg;
  cfg.client_id = "bench";
  cfg.chip_name = chip;
  cfg.seed = bytes_of("f1:" + chip + ":" + std::to_string(payload_size));
  cfg.tpm_key_bits = 1024;
  cfg.client_key_bits = 1024;
  cfg.net.latency_mean_ms = 40;
  sp::Deployment world(cfg);

  devices::HumanParams hp;
  hp.typo_prob = 0.0;
  pal::HumanAgent agent(devices::HumanModel(hp, SimRng(7)), "checkout");
  world.client().set_user_agent(&agent);
  if (!world.client().enroll().ok()) std::abort();

  const SimTime start = world.clock().now();
  auto outcome =
      world.client().submit_transaction("checkout", Bytes(payload_size, 0x5a));
  if (!outcome.ok() || !outcome.value().accepted) std::abort();
  const SimDuration total = world.clock().now() - start;
  const SimDuration user = outcome.value().timing.user;
  return Point{(total - user).to_millis(), total.to_millis()};
}

}  // namespace

int main() {
  std::printf("=== F1: end-to-end confirmation latency vs payload size ===\n");
  std::printf("(machine = session + network, excl. human; total incl. human;"
              " virtual ms)\n\n");

  const std::size_t sizes[] = {256, 1024, 4096, 16384, 65536};
  for (const auto& chip : tpm::standard_chips()) {
    std::printf("--- %s ---\n", chip.name.c_str());
    std::printf("%12s  %12s  %12s\n", "payload (B)", "machine", "total");
    for (std::size_t size : sizes) {
      const Point p = run_once(chip.name, size);
      std::printf("%12zu  %12.1f  %12.1f\n", size, p.machine_ms, p.total_ms);
    }
    std::printf("\n");
  }

  std::printf(
      "Shape check: machine latency is essentially flat across a 256x\n"
      "payload range (the marginal cost is hashing), and the total is\n"
      "dominated by the human on every chip.\n");
  return 0;
}
