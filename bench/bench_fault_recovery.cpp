// Experiment F8: recovery cost under injected network faults.
//
// Sweeps the per-message fault rate on the client<->SP link from 0% to
// 30% (a mix of drops, duplicates, reorders and delay spikes, split
// 60/20/10/10) and drives the full stack -- retrying client, idempotent
// SP, perfect human -- through a fixed batch of transactions at each
// point. Reported per rate: how many transactions landed, how many
// retransmissions and SP-side replays that took, and the machine-time
// cost per transaction (the human excluded). The claim: the exactly-once
// machinery turns a 30%-lossy link from "protocol broken" into "same
// outcomes, higher latency" -- goodput stays at 100% while the retry and
// replay counters, not the accept counters, absorb the fault rate.
//
// --json=PATH     also emit the table as JSON for the experiment suite
#include <cstdio>
#include <string>
#include <vector>

#include "devices/human.h"
#include "pal/human_agent.h"
#include "sp/deployment.h"

using namespace tp;

namespace {

constexpr int kTxsPerPoint = 30;

struct Point {
  int accepted = 0;
  int failed = 0;  // transport gave up or SP rejected
  std::uint64_t retries = 0;
  std::uint64_t replays = 0;
  std::uint64_t faults = 0;
  double machine_ms_per_tx = 0.0;
};

Point run_rate(double rate_pct) {
  const double rate = rate_pct / 100.0;
  sp::DeploymentConfig cfg;
  cfg.client_id = "f8-client";
  cfg.seed = bytes_of("f8:" + std::to_string(rate_pct));
  cfg.tpm_key_bits = 768;
  cfg.client_key_bits = 768;
  cfg.net.latency_mean_ms = 20;
  cfg.net.fault.seed = 0xf8f8f8 + static_cast<std::uint64_t>(rate_pct);
  net::FaultProfile profile;
  profile.drop_prob = 0.6 * rate;
  profile.dup_prob = 0.2 * rate;
  profile.reorder_prob = 0.1 * rate;
  profile.delay_spike_prob = 0.1 * rate;
  profile.delay_spike_ms = 200.0;
  cfg.net.fault.to_sp = profile;
  cfg.net.fault.to_client = profile;
  cfg.client_retry.max_attempts = 16;
  cfg.client_retry.backoff_base = SimDuration::millis(50);
  sp::Deployment world(cfg);

  devices::HumanParams hp;
  hp.typo_prob = 0.0;
  hp.attention = 1.0;
  pal::HumanAgent agent(devices::HumanModel(hp, SimRng(8)), "");
  world.client().set_user_agent(&agent);
  if (!world.client().enroll().ok()) std::abort();

  Point p;
  SimDuration machine{0};
  for (int i = 0; i < kTxsPerPoint; ++i) {
    const std::string summary = "order " + std::to_string(i);
    agent.set_intended_summary(summary);
    const SimTime start = world.clock().now();
    auto outcome = world.client().submit_transaction(summary, bytes_of("tx"));
    const SimDuration total = world.clock().now() - start;
    if (outcome.ok() && outcome.value().accepted) {
      ++p.accepted;
      machine = machine + (total - outcome.value().timing.user);
    } else {
      ++p.failed;
    }
  }
  p.retries = world.client().retries();
  p.replays = world.sp().replayed_challenges() + world.sp().replayed_results();
  p.faults = world.link().faults() != nullptr
                 ? world.link().faults()->injected_total()
                 : 0;
  p.machine_ms_per_tx =
      p.accepted > 0 ? machine.to_millis() / p.accepted : 0.0;
  return p;
}

void write_json(const std::string& path,
                const std::vector<std::pair<double, Point>>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"experiment\": \"F8\",\n  \"txs_per_point\": %d,\n"
               "  \"rows\": [\n", kTxsPerPoint);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Point& p = rows[i].second;
    std::fprintf(
        f,
        "    {\"fault_rate_pct\": %.0f, \"accepted\": %d, \"failed\": %d, "
        "\"faults\": %llu, \"retries\": %llu, \"replays\": %llu, "
        "\"machine_ms_per_tx\": %.1f}%s\n",
        rows[i].first, p.accepted, p.failed,
        static_cast<unsigned long long>(p.faults),
        static_cast<unsigned long long>(p.retries),
        static_cast<unsigned long long>(p.replays), p.machine_ms_per_tx,
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) json_path = arg.substr(7);
  }

  std::printf("=== F8: recovery under injected faults (%d txs/point) ===\n",
              kTxsPerPoint);
  std::printf("(fault mix: 60%% drop, 20%% dup, 10%% reorder, 10%% delay"
              " spike; retry: 16 attempts, 50 ms base backoff)\n\n");
  std::printf("%10s  %9s  %7s  %8s  %8s  %8s  %14s\n", "fault rate",
              "accepted", "failed", "faults", "retries", "replays",
              "machine ms/tx");

  const double rates[] = {0, 5, 10, 15, 20, 25, 30};
  std::vector<std::pair<double, Point>> rows;
  for (const double rate : rates) {
    const Point p = run_rate(rate);
    rows.emplace_back(rate, p);
    std::printf("%9.0f%%  %6d/%d  %7d  %8llu  %8llu  %8llu  %14.1f\n", rate,
                p.accepted, kTxsPerPoint, p.failed,
                static_cast<unsigned long long>(p.faults),
                static_cast<unsigned long long>(p.retries),
                static_cast<unsigned long long>(p.replays),
                p.machine_ms_per_tx);
  }

  if (!json_path.empty()) {
    write_json(json_path, rows);
    std::printf("\nwrote %s\n", json_path.c_str());
  }

  std::printf(
      "\nShape check: the accepted column stays full across the sweep while\n"
      "retries/replays grow with the fault rate -- recovery is paid in\n"
      "latency (machine ms/tx), never in lost or double-executed\n"
      "transactions.\n");
  return 0;
}
