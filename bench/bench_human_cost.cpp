// Experiment F4: human cost -- trusted path vs captcha.
//
// The "replacement for captchas" argument needs the human side: how much
// user time and how many user errors does each mechanism cost per
// successful operation? Sweeps captcha distortion (the knob a captcha
// deployment must crank to keep bots out) against the fixed-cost trusted
// path confirmation.
#include <cstdio>

#include "captcha/captcha.h"
#include "devices/human.h"
#include "devices/keyboard.h"

using namespace tp;
using devices::HumanModel;
using devices::HumanParams;

namespace {

constexpr int kTrials = 2000;

struct HumanCost {
  double mean_time_s;     // per successful completion, incl. retries
  double first_try_fail;  // P(first attempt fails)
};

// Trusted path: read the screen, type a 6-char code; a typo costs one
// retry (fresh code, same flow).
HumanCost trusted_path_cost(const HumanParams& params, std::uint64_t seed) {
  HumanModel human(params, SimRng(seed));
  double total_s = 0;
  int first_fail = 0;
  for (int i = 0; i < kTrials; ++i) {
    double session_s = 0;
    bool first = true;
    for (int attempt = 0; attempt < 3; ++attempt) {
      devices::Keyboard kb;
      const devices::DisplayContent screen{
          {"TX: pay 10 EUR to bob", "CODE: k3m9pq"}};
      const SimDuration took =
          human.respond_to_confirmation(screen, "pay 10 EUR to bob", kb);
      session_s += took.to_seconds();
      if (kb.read_line() == "k3m9pq") break;
      if (first) ++first_fail;
      first = false;
    }
    total_s += session_s;
  }
  return HumanCost{total_s / kTrials,
                   static_cast<double>(first_fail) / kTrials};
}

// Captcha: solve-or-retry until success (service issues a new challenge
// per failure), at a given distortion.
HumanCost captcha_cost(const HumanParams& params, double distortion,
                       std::uint64_t seed) {
  HumanModel human(params, SimRng(seed));
  const double p =
      captcha::human_solve_prob(params.captcha_solve_prob, distortion);
  SimRng rng(seed * 7 + 3);
  double total_s = 0;
  int first_fail = 0;
  for (int i = 0; i < kTrials; ++i) {
    double session_s = 0;
    bool first = true;
    for (int attempt = 0; attempt < 10; ++attempt) {
      session_s += human.captcha_time().to_seconds();
      if (rng.chance(p)) break;
      if (first) ++first_fail;
      first = false;
    }
    total_s += session_s;
  }
  return HumanCost{total_s / kTrials,
                   static_cast<double>(first_fail) / kTrials};
}

}  // namespace

int main() {
  std::printf("=== F4: human cost per operation -- trusted path vs captcha ===\n\n");
  HumanParams params;  // literature defaults

  const HumanCost tp_cost = trusted_path_cost(params, 11);
  std::printf("%-28s  %14s  %16s\n", "mechanism", "mean time (s)",
              "P(first failure)");
  std::printf("%-28s  %14.2f  %16.3f\n", "trusted path (6-char code)",
              tp_cost.mean_time_s, tp_cost.first_try_fail);

  for (double distortion : {0.0, 0.3, 0.6, 0.9}) {
    char label[64];
    std::snprintf(label, sizeof label, "captcha (distortion %.1f)",
                  distortion);
    const HumanCost c = captcha_cost(params, distortion, 23);
    std::printf("%-28s  %14.2f  %16.3f\n", label, c.mean_time_s,
                c.first_try_fail);
  }

  std::printf(
      "\nShape check: one trusted-path confirmation costs the user about\n"
      "as much as ONE easy captcha -- but captchas must crank distortion\n"
      "to resist bots, driving human time and failure rates up, while the\n"
      "trusted path's bot resistance is independent of its human cost.\n");
  return 0;
}
