// Experiment F7: session-table behaviour under abandonment.
//
// The scenario the bounded session table exists for: clients (or an
// attacker) open confirmation sessions and walk away. The seed's
// unbounded pending maps grew without limit under that load; the table
// must instead hold throughput steady and memory flat while expiring or
// evicting the abandoned fraction.
//
// Measurements, at 0% / 25% / 75% abandoned sessions:
//   1. BM_SessionChurn  -- begin+settle throughput through the real SP
//                          (require_trusted_path=false isolates session
//                          bookkeeping from RSA verification);
//   2. BM_SessionTableOps -- the raw table begin/find/erase kernel.
//
// Counters reported per run: table memory (flat by construction),
// expirations and evictions, so the three abandonment levels can be
// compared line by line in EXPERIMENTS.md.
#include <benchmark/benchmark.h>

#include <string>

#include "core/trusted_path_pal.h"
#include "proto/session_table.h"
#include "sp/service_provider.h"
#include "util/rng.h"

using namespace tp;

namespace {

sp::SpConfig churn_config() {
  sp::SpConfig cfg;
  cfg.golden_pcr17 = core::golden_pcr17();
  cfg.seed = bytes_of("f7");
  cfg.require_trusted_path = false;  // settle without PAL signatures
  cfg.tx_session_capacity = 4096;
  cfg.session_ttl = SimDuration::seconds(120);
  return cfg;
}

}  // namespace

static void BM_SessionChurn(benchmark::State& state) {
  const int abandon_pct = static_cast<int>(state.range(0));
  sp::ServiceProvider sp(churn_config());
  SimRng rng(1234);
  // Virtual time advances ~1ms per submission, so abandoned sessions
  // age out mid-run (the TTL covers ~120k submissions).
  std::int64_t now_ns = 0;
  std::uint64_t settled = 0;

  for (auto _ : state) {
    now_ns += 1'000'000;
    sp.advance_time_to(SimTime{now_ns});
    const core::TxChallenge challenge = sp.begin_transaction(
        core::TxSubmit{"alice", "pay 10 EUR", bytes_of("p")});
    if (static_cast<int>(rng.next_below(100)) < abandon_pct) {
      continue;  // walk away: the table must clean this up itself
    }
    core::TxConfirm confirm;
    confirm.client_id = "alice";
    confirm.tx_id = challenge.tx_id;
    confirm.verdict = core::Verdict::kConfirmed;
    benchmark::DoNotOptimize(sp.complete_transaction(confirm));
    ++settled;
  }

  state.SetItemsProcessed(state.iterations());
  state.counters["table_kib"] = benchmark::Counter(
      static_cast<double>(sp.session_table_memory_bytes()) / 1024.0);
  state.counters["occupancy"] =
      benchmark::Counter(static_cast<double>(sp.session_table_occupancy()));
  state.counters["expired"] =
      benchmark::Counter(static_cast<double>(sp.session_expirations()));
  state.counters["evicted"] =
      benchmark::Counter(static_cast<double>(sp.session_evictions()));
  state.SetLabel(std::to_string(abandon_pct) + "% abandoned, " +
                 std::to_string(settled) + " settled");
}
BENCHMARK(BM_SessionChurn)->Arg(0)->Arg(25)->Arg(75);

static void BM_SessionTableOps(benchmark::State& state) {
  const int abandon_pct = static_cast<int>(state.range(0));
  proto::SessionTable table(
      {.capacity = 4096, .ttl = SimDuration::seconds(120)});
  SimRng rng(5678);
  std::int64_t now_ns = 0;
  std::uint64_t tx_id = 0;

  for (auto _ : state) {
    now_ns += 1'000'000;
    const auto key = proto::SessionTable::tx_key(tx_id++);
    table.begin(key, SimTime{now_ns}).set_nonce(bytes_of("nonce"));
    if (static_cast<int>(rng.next_below(100)) < abandon_pct) continue;
    benchmark::DoNotOptimize(table.find(key, SimTime{now_ns}));
    table.erase(key);
  }

  state.SetItemsProcessed(state.iterations());
  state.counters["table_kib"] = benchmark::Counter(
      static_cast<double>(table.memory_bytes()) / 1024.0);
  state.counters["expired"] =
      benchmark::Counter(static_cast<double>(table.expirations()));
  state.counters["evicted"] =
      benchmark::Counter(static_cast<double>(table.evictions()));
  state.SetLabel(std::to_string(abandon_pct) + "% abandoned");
}
BENCHMARK(BM_SessionTableOps)->Arg(0)->Arg(25)->Arg(75);

BENCHMARK_MAIN();
