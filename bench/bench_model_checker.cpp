// Experiment F12: model-checker exploration cost and coverage.
//
// Sweeps the exploration depth bound and reports, per depth: distinct
// (deduplicated) states, transitions evaluated, peak depth actually
// reached, whether the frontier was exhausted (exhaustive verification
// up to that depth) and wall-clock time. The claim: the symbolic world
// is compact enough (23-byte packed states, one-u32 attacker knowledge)
// that EXHAUSTIVE Dolev-Yao exploration of the enroll+confirm protocol
// to useful depths is a sub-second affair, cheap enough to sit in PR CI
// -- model checking as a regression test, not a research artifact.
//
// --depth=N       highest depth bound in the sweep (default 16)
// --max-states=N  per-run visited-state cap, 0 = unbounded (default 0)
// --json=PATH     also emit the table as JSON for the experiment suite
#include <chrono>
#include <cstdio>
#include <cstdint>
#include <string>
#include <vector>

#include "model/checker.h"

using namespace tp;

namespace {

struct Row {
  int depth_bound = 0;
  model::CheckResult result;
  double millis = 0.0;
};

Row run_depth(int depth, std::size_t max_states) {
  model::CheckerConfig cfg;
  cfg.max_depth = depth;
  cfg.max_states = max_states;
  const auto start = std::chrono::steady_clock::now();
  Row row;
  row.depth_bound = depth;
  row.result = model::check(cfg);
  row.millis = std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - start)
                   .count();
  return row;
}

void write_json(const std::string& path, const std::vector<Row>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"experiment\": \"F12\",\n  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        f,
        "    {\"depth\": %d, \"states\": %llu, \"transitions\": %llu, "
        "\"depth_reached\": %d, \"exhaustive\": %s, \"violations\": %llu, "
        "\"ms\": %.1f}%s\n",
        r.depth_bound, static_cast<unsigned long long>(r.result.states),
        static_cast<unsigned long long>(r.result.transitions),
        r.result.max_depth_reached,
        r.result.frontier_exhausted ? "true" : "false",
        static_cast<unsigned long long>(r.result.violations.size()), r.millis,
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  int max_depth = 16;
  std::size_t max_states = 0;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--depth=", 0) == 0) {
      max_depth = std::stoi(arg.substr(8));
    } else if (arg.rfind("--max-states=", 0) == 0) {
      max_states = static_cast<std::size_t>(std::stoull(arg.substr(13)));
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    }
  }

  std::printf("=== F12: Dolev-Yao model-checker exploration cost ===\n");
  std::printf("(symbolic world: %zu-byte states, %d-frame universe, "
              "%u enroll / %u tx nonces)\n\n",
              sizeof(model::World), static_cast<int>(model::kFrameCount),
              static_cast<unsigned>(model::kEnrollNoncePool),
              static_cast<unsigned>(model::kTxNoncePool));
  std::printf("%6s  %10s  %12s  %8s  %11s  %10s  %9s\n", "depth", "states",
              "transitions", "reached", "exhaustive", "violations", "time");

  std::vector<Row> rows;
  for (int depth = 4; depth <= max_depth; depth += 2) {
    rows.push_back(run_depth(depth, max_states));
    const Row& r = rows.back();
    std::printf("%6d  %10llu  %12llu  %8d  %11s  %10llu  %7.1fms\n",
                r.depth_bound,
                static_cast<unsigned long long>(r.result.states),
                static_cast<unsigned long long>(r.result.transitions),
                r.result.max_depth_reached,
                r.result.frontier_exhausted ? "yes" : "no",
                static_cast<unsigned long long>(r.result.violations.size()),
                r.millis);
  }

  if (!json_path.empty()) {
    write_json(json_path, rows);
    std::printf("\nwrote %s\n", json_path.c_str());
  }

  std::printf(
      "\nShape check: states grow geometrically with depth while the\n"
      "violation column stays zero -- every reachable interleaving of the\n"
      "deployed decision functions under the attacker is safe, and the\n"
      "cost of proving it stays CI-sized.\n");
  return 0;
}
