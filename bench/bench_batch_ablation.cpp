// Ablation A1: batch confirmation -- machine cost per transaction vs
// batch size.
//
// Design question: the per-transaction machine cost of the trusted path
// is dominated by the fixed session overhead (suspend + SKINIT + Unseal).
// Confirming N transactions in one session pays that overhead once and
// adds only one signature per extra transaction. This harness quantifies
// the amortization on every chip, plus the user-side effect (one code
// entry instead of N).
#include <cstdio>

#include "devices/human.h"
#include "pal/human_agent.h"
#include "sp/deployment.h"
#include "tpm/chip_profile.h"

using namespace tp;

namespace {

struct Point {
  double machine_ms_per_tx;
  double user_ms_per_tx;
  bool all_accepted;
};

Point run_batch(const std::string& chip, std::size_t batch_size) {
  sp::DeploymentConfig cfg;
  cfg.client_id = "bench";
  cfg.chip_name = chip;
  cfg.seed = bytes_of("a1:" + chip + std::to_string(batch_size));
  cfg.tpm_key_bits = 1024;
  cfg.client_key_bits = 1024;
  sp::Deployment world(cfg);

  std::vector<core::TrustedPathClient::BatchTx> txs;
  std::vector<core::BatchItem> preview;
  for (std::size_t i = 0; i < batch_size; ++i) {
    const std::string summary = "pay " + std::to_string(i + 1) + " EUR";
    txs.emplace_back(summary, Bytes(256, 0x33));
    preview.push_back(core::BatchItem{summary, {}, {}});
  }

  devices::HumanParams hp;
  hp.typo_prob = 0.0;
  pal::HumanAgent agent(devices::HumanModel(hp, SimRng(4)),
                        core::batch_summary(preview));
  world.client().set_user_agent(&agent);
  if (!world.client().enroll().ok()) std::abort();

  auto outcome = world.client().submit_batch(txs);
  if (!outcome.ok()) std::abort();
  const auto& t = outcome.value().timing;
  return Point{
      t.machine().to_millis() / static_cast<double>(batch_size),
      t.user.to_millis() / static_cast<double>(batch_size),
      outcome.value().accepted_count() == batch_size,
  };
}

}  // namespace

int main() {
  std::printf("=== A1 (ablation): batch confirmation amortization ===\n");
  std::printf("(virtual ms PER TRANSACTION; one session per batch)\n\n");

  const std::size_t sizes[] = {1, 2, 4, 8, 16};
  for (const auto& chip : tpm::standard_chips()) {
    std::printf("--- %s ---\n", chip.name.c_str());
    std::printf("%10s  %14s  %14s\n", "batch", "machine/tx", "human/tx");
    for (std::size_t size : sizes) {
      const Point p = run_batch(chip.name, size);
      if (!p.all_accepted) std::abort();
      std::printf("%10zu  %14.1f  %14.1f\n", size, p.machine_ms_per_tx,
                  p.user_ms_per_tx);
    }
    std::printf("\n");
  }

  std::printf(
      "Shape check: per-transaction machine cost falls roughly as 1/N\n"
      "(the session overhead amortizes; only the per-item signature\n"
      "remains), and the user's one code entry amortizes the same way --\n"
      "batching is how a deployment makes heavy-TPM chips practical.\n");
  return 0;
}
