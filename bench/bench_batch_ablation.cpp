// Ablation A1: batch confirmation -- machine cost per transaction vs
// batch size.
//
// Design question: the per-transaction machine cost of the trusted path
// is dominated by the fixed session overhead (suspend + SKINIT + Unseal).
// Confirming N transactions in one session pays that overhead once and
// adds only one signature per extra transaction. This harness quantifies
// the amortization on every chip, plus the user-side effect (one code
// entry instead of N).
// A second section (F10) turns the same question toward the server: the
// SP-side verifier-batch ablation, accepts/sec for RSA (TPM 1.2) and
// ECDSA (TPM 2.0) confirmation streams at verify-batch sizes 1/4/16/64
// through ServiceProvider::complete_transaction_batch, in real time.
#include <chrono>
#include <cstdio>
#include <span>
#include <vector>

#include "core/trusted_path_pal.h"
#include "devices/human.h"
#include "pal/human_agent.h"
#include "pal/session.h"
#include "sp/deployment.h"
#include "sp/service_provider.h"
#include "tpm/chip_profile.h"
#include "tpm/privacy_ca.h"

using namespace tp;

namespace {

struct Point {
  double machine_ms_per_tx;
  double user_ms_per_tx;
  bool all_accepted;
};

Point run_batch(const std::string& chip, std::size_t batch_size) {
  sp::DeploymentConfig cfg;
  cfg.client_id = "bench";
  cfg.chip_name = chip;
  cfg.seed = bytes_of("a1:" + chip + std::to_string(batch_size));
  cfg.tpm_key_bits = 1024;
  cfg.client_key_bits = 1024;
  sp::Deployment world(cfg);

  std::vector<core::TrustedPathClient::BatchTx> txs;
  std::vector<core::BatchItem> preview;
  for (std::size_t i = 0; i < batch_size; ++i) {
    const std::string summary = "pay " + std::to_string(i + 1) + " EUR";
    txs.emplace_back(summary, Bytes(256, 0x33));
    preview.push_back(core::BatchItem{summary, {}, {}});
  }

  devices::HumanParams hp;
  hp.typo_prob = 0.0;
  pal::HumanAgent agent(devices::HumanModel(hp, SimRng(4)),
                        core::batch_summary(preview));
  world.client().set_user_agent(&agent);
  if (!world.client().enroll().ok()) std::abort();

  auto outcome = world.client().submit_batch(txs);
  if (!outcome.ok()) std::abort();
  const auto& t = outcome.value().timing;
  return Point{
      t.machine().to_millis() / static_cast<double>(batch_size),
      t.user.to_millis() / static_cast<double>(batch_size),
      outcome.value().accepted_count() == batch_size,
  };
}

// ---- F10: SP-side verifier-batch ablation ------------------------------

/// Types whatever code the PAL displays (a perfectly obedient user).
class ScriptedCodeAgent : public pal::UserAgent {
 public:
  std::optional<SimDuration> on_prompt(const devices::DisplayContent& screen,
                                       devices::Keyboard& kb) override {
    kb.press_line(devices::KeySource::kPhysical,
                  screen.find_field(devices::kFieldCode));
    return SimDuration::seconds(3);
  }
};

/// One SP with one enrolled platform of the given backend, plus a
/// minting helper -- the same corpus construction bench_sp_throughput
/// uses for F3, kept self-contained here.
struct SpHarness {
  explicit SpHarness(tpm::QuoteFormat backend)
      : ca(bytes_of("f10-ca"), 1024), sp(make_config(ca)) {
    drtm::PlatformConfig pc;
    pc.platform_id = "client-0";
    pc.seed = bytes_of(std::string("f10-platform-") +
                       tpm::quote_format_name(backend));
    pc.tpm_key_bits = 1024;
    pc.backend = backend;
    platform = std::make_unique<drtm::Platform>(pc);
    driver = std::make_unique<pal::SessionDriver>(*platform);
    driver->set_user_agent(&agent);

    const core::EnrollChallenge challenge =
        sp.begin_enrollment(core::EnrollBegin{"client-0"});
    core::PalEnrollInput in;
    in.nonce = challenge.nonce;
    in.key_bits = 1024;
    auto session = driver->run(core::make_trusted_path_pal(), in.marshal());
    auto out = core::PalEnrollOutput::unmarshal(session.value().output);
    sealed_key = out.value().sealed_key;
    core::EnrollComplete complete;
    complete.client_id = "client-0";
    complete.format = backend;
    complete.confirmation_pubkey = out.value().pubkey;
    complete.quote = out.value().quote;
    if (backend == tpm::QuoteFormat::kTpm2) {
      complete.aik_certificate =
          ca.certify_key("client-0",
                         tpm::AttestationKey::of(platform->tpm2().ak_public()))
              .serialize();
    } else {
      complete.aik_certificate =
          ca.certify("client-0", platform->tpm().aik_public()).serialize();
    }
    if (!sp.complete_enrollment(complete).accepted) std::abort();
  }

  static sp::SpConfig make_config(const tpm::PrivacyCa& ca) {
    sp::SpConfig cfg;
    cfg.golden_pcr17 = core::golden_pcr17();
    cfg.ca_public = ca.public_key();
    cfg.accepted_policies = {
        core::attestation_policy(drtm::DrtmTechnology::kAmdSkinit),
        core::attestation_policy(drtm::DrtmTechnology::kAmdSkinit, {},
                                 tpm::QuoteFormat::kTpm2),
    };
    return cfg;
  }

  core::TxConfirm mint(std::uint64_t i) {
    core::TxSubmit submit{"client-0", "pay " + std::to_string(i),
                          Bytes(64, 1)};
    const core::TxChallenge challenge = sp.begin_transaction(submit);
    core::PalConfirmInput in;
    in.tx_summary = submit.summary;
    in.tx_digest = submit.digest();
    in.nonce = challenge.nonce;
    in.sealed_key = sealed_key;
    auto session = driver->run(core::make_trusted_path_pal(), in.marshal());
    auto out = core::PalConfirmOutput::unmarshal(session.value().output);
    core::TxConfirm confirm;
    confirm.client_id = "client-0";
    confirm.tx_id = challenge.tx_id;
    confirm.verdict = out.value().verdict;
    confirm.signature = out.value().signature;
    return confirm;
  }

  tpm::PrivacyCa ca;
  sp::ServiceProvider sp;
  ScriptedCodeAgent agent;
  std::unique_ptr<drtm::Platform> platform;
  std::unique_ptr<pal::SessionDriver> driver;
  Bytes sealed_key;
};

/// Best-of-3 accepts/sec settling `total` pre-minted confirmations in
/// verify batches of `batch_size` (fresh corpus per rep -- confirmations
/// are one-shot).
double run_sp_batch(SpHarness& h, std::uint64_t& minted,
                    std::size_t batch_size, std::size_t total) {
  double best = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    std::vector<core::TxConfirm> corpus;
    corpus.reserve(total);
    for (std::size_t i = 0; i < total; ++i) corpus.push_back(h.mint(minted++));
    const auto start = std::chrono::steady_clock::now();
    std::size_t accepted = 0;
    for (std::size_t off = 0; off < corpus.size(); off += batch_size) {
      const std::size_t n = std::min(batch_size, corpus.size() - off);
      const auto results = h.sp.complete_transaction_batch(
          std::span<const core::TxConfirm>(corpus.data() + off, n));
      for (const auto& r : results) accepted += r.accepted ? 1 : 0;
    }
    const double secs = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();
    if (accepted != total) std::abort();
    best = std::max(best, total / secs);
  }
  return best;
}

}  // namespace

int main() {
  std::printf("=== A1 (ablation): batch confirmation amortization ===\n");
  std::printf("(virtual ms PER TRANSACTION; one session per batch)\n\n");

  const std::size_t sizes[] = {1, 2, 4, 8, 16};
  for (const auto& chip : tpm::standard_chips()) {
    std::printf("--- %s ---\n", chip.name.c_str());
    std::printf("%10s  %14s  %14s\n", "batch", "machine/tx", "human/tx");
    for (std::size_t size : sizes) {
      const Point p = run_batch(chip.name, size);
      if (!p.all_accepted) std::abort();
      std::printf("%10zu  %14.1f  %14.1f\n", size, p.machine_ms_per_tx,
                  p.user_ms_per_tx);
    }
    std::printf("\n");
  }

  std::printf(
      "Shape check: per-transaction machine cost falls roughly as 1/N\n"
      "(the session overhead amortizes; only the per-item signature\n"
      "remains), and the user's one code entry amortizes the same way --\n"
      "batching is how a deployment makes heavy-TPM chips practical.\n\n");

  std::printf("=== F10 (ablation): SP-side verifier batch ===\n");
  std::printf("(real accepts/sec, best of 3, 128 confirmations per rep)\n\n");
  std::printf("%8s  %14s  %14s\n", "batch", "rsa acc/s", "ecdsa acc/s");
  SpHarness rsa(tpm::QuoteFormat::kTpm12);
  SpHarness ecdsa(tpm::QuoteFormat::kTpm2);
  std::uint64_t minted_rsa = 0, minted_ec = 0;
  for (std::size_t size : {1u, 4u, 16u, 64u}) {
    const double r = run_sp_batch(rsa, minted_rsa, size, 128);
    const double e = run_sp_batch(ecdsa, minted_ec, size, 128);
    std::printf("%8zu  %14.0f  %14.0f\n", size, r, e);
  }
  std::printf(
      "\nShape check: the gathered verify pass amortizes the statement\n"
      "hashing, metrics flush and (for ECDSA) the modular inversions; the\n"
      "per-item modexp / scalar multiplication is untouched, so the curve\n"
      "flattens where the signature kernel dominates. The queue-drain +\n"
      "group-commit amortization is measured by bench_svc_throughput's\n"
      "max_batch rows.\n");
  return 0;
}
