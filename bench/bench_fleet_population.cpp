// Experiment F3b/F11: population view -- one SP (or a sharded cluster of
// them) serving many clients.
//
// Default mode (F3b) complements F3 (raw verifier throughput) with the
// deployment question: when a mixed fleet (all four TPM chips, both DRTM
// technologies) runs enrollments and confirmations against one SP
// instance, what does the population's latency distribution look like,
// and does the SP state stay consistent? Reports per-percentile confirm
// machine times across the fleet and the SP's final accounting.
//
// Cluster mode (F11, --cluster) asks the scale-out question instead: a
// cluster::VerifierCluster of K shared-nothing shards behind the
// consistent-hash router enrolls a large synthetic population (1M+
// clients in the recorded run) and serves a confirmation blast, proving
// (a) per-shard memory stays flat as the cluster grows -- each shard's
// bounded tables are sized for its share, not the population -- and
// (b) aggregate accepts/s scales near-linearly in shard count in the
// latency-hiding regime (each accept pays the modeled 500us backing-
// store commit; shards overlap those waits).
//
// The cluster population is synthetic but cryptographically genuine: all
// clients share one CA-certified AIK and one confirmation keypair (the
// SP binds evidence per client id, not per key), and every enrollment
// quote / confirmation signature is a real RSA signature the SP fully
// verifies. What the fast path skips is the client-side simulation
// (virtual TPM, DRTM launch, human typing) -- none of which runs on the
// SP and none of which this experiment measures.
//
// Usage:
//   bench_fleet_population [--json=<path>]                     (F3b)
//   bench_fleet_population --cluster [--clients=N] [--shards=K]
//                          [--confirms=M] [--json=<path>]      (F11)
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "cluster/verifier_cluster.h"
#include "core/messages.h"
#include "core/trusted_path_pal.h"
#include "crypto/drbg.h"
#include "crypto/rsa.h"
#include "pal/human_agent.h"
#include "sp/fleet.h"
#include "tpm/pcr.h"
#include "tpm/privacy_ca.h"
#include "tpm/quote.h"

using namespace tp;

namespace {

double percentile(std::vector<double> values, double p) {
  std::sort(values.begin(), values.end());
  const std::size_t idx = static_cast<std::size_t>(
      p * static_cast<double>(values.size() - 1) + 0.5);
  return values[idx];
}

// ------------------------------------------------------------------ F3b

struct PopulationRow {
  std::size_t clients = 0;
  int tx_per_client = 0;
  std::size_t enrolled = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  double p10_ms = 0, p50_ms = 0, p90_ms = 0, p99_ms = 0;
};

PopulationRow run_population(std::size_t n_clients, int tx_per_client,
                             std::vector<tpm::QuoteFormat> backend_mix = {}) {
  sp::FleetConfig cfg;
  cfg.num_clients = n_clients;
  cfg.seed = bytes_of("f3b:" + std::to_string(n_clients));
  cfg.tpm_key_bits = 1024;
  cfg.client_key_bits = 1024;
  cfg.chip_mix = {"Infineon SLB9635", "Broadcom BCM5752",
                  "Atmel AT97SC3203", "STMicro ST19NP18"};
  cfg.technology_mix = {drtm::DrtmTechnology::kAmdSkinit,
                        drtm::DrtmTechnology::kIntelTxt};
  cfg.backend_mix = backend_mix;
  sp::Fleet fleet(cfg);

  const std::size_t enrolled = fleet.enroll_all();
  std::vector<double> confirm_ms;
  std::size_t accepted = 0;
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    devices::HumanParams hp;  // realistic humans, typos included
    pal::HumanAgent agent(devices::HumanModel(hp, SimRng(1000 + i)), "");
    fleet.client(i).set_user_agent(&agent);
    for (int t = 0; t < tx_per_client; ++t) {
      const std::string summary =
          "pay " + std::to_string(t) + " by " + fleet.client_id(i);
      agent.set_intended_summary(summary);
      auto outcome = fleet.client(i).submit_transaction(summary, {});
      if (!outcome.ok()) continue;
      if (outcome.value().accepted) ++accepted;
      confirm_ms.push_back(outcome.value().timing.machine().to_millis());
    }
  }

  std::printf("fleet=%zu clients x %d tx  enrolled=%zu/%zu\n", n_clients,
              tx_per_client, enrolled, n_clients);
  std::printf(
      "  confirm machine ms: p10=%.0f  p50=%.0f  p90=%.0f  p99=%.0f\n",
      percentile(confirm_ms, 0.10), percentile(confirm_ms, 0.50),
      percentile(confirm_ms, 0.90), percentile(confirm_ms, 0.99));
  const auto stats = fleet.sp().stats();
  std::printf("  SP: accepted=%llu rejected=%llu\n",
              static_cast<unsigned long long>(stats.tx_accepted),
              static_cast<unsigned long long>(stats.tx_rejected));
  if (!backend_mix.empty()) {
    std::printf(
        "  by backend: enrolled tpm12=%llu tpm2=%llu  "
        "accepted tpm12=%llu tpm2=%llu\n",
        static_cast<unsigned long long>(
            stats.enrolled_format(tpm::QuoteFormat::kTpm12)),
        static_cast<unsigned long long>(
            stats.enrolled_format(tpm::QuoteFormat::kTpm2)),
        static_cast<unsigned long long>(
            stats.tx_accepted_format(tpm::QuoteFormat::kTpm12)),
        static_cast<unsigned long long>(
            stats.tx_accepted_format(tpm::QuoteFormat::kTpm2)));
  }
  PopulationRow row;
  row.clients = n_clients;
  row.tx_per_client = tx_per_client;
  row.enrolled = enrolled;
  row.accepted = stats.tx_accepted;
  row.rejected = stats.tx_rejected;
  row.p10_ms = percentile(confirm_ms, 0.10);
  row.p50_ms = percentile(confirm_ms, 0.50);
  row.p90_ms = percentile(confirm_ms, 0.90);
  row.p99_ms = percentile(confirm_ms, 0.99);
  return row;
}

int run_f3b(const std::string& json_path) {
  std::printf("=== F3b: mixed fleet against one service provider ===\n\n");
  std::vector<PopulationRow> rows;
  rows.push_back(run_population(4, 4));
  rows.push_back(run_population(16, 2));
  // Mid-migration round: half the machines quote TPM 1.2 (SHA-1 PCRs,
  // RSA AIK), half TPM 2.0 (SHA-256 PCRs, ECC AK), one SP verifies both.
  std::printf("\n--- mixed 1.2/2.0 backends ---\n");
  rows.push_back(run_population(
      16, 2, {tpm::QuoteFormat::kTpm12, tpm::QuoteFormat::kTpm2}));
  std::printf(
      "\nShape check: the population's p10..p99 spread reflects the chip\n"
      "mix (fast Infineon to slow Broadcom), enrollment succeeds for both\n"
      "DRTM technologies, and one SP instance serves the whole fleet with\n"
      "consistent accounting. In the mixed round the per-backend slices\n"
      "must sum to the totals: the SP dispatches on the enrollment's\n"
      "quote-format tag, not on anything the fleet tells it out of band.\n"
      "Occasional rejections are the realistic humans typo-ing out of all\n"
      "retries -- not protocol failures.\n");

  if (!json_path.empty()) {
    std::FILE* out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(out, "{\"bench\":\"fleet_population\",\"rows\":[\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const PopulationRow& r = rows[i];
      std::fprintf(
          out,
          "  {\"clients\":%zu,\"tx_per_client\":%d,\"enrolled\":%zu,"
          "\"accepted\":%llu,\"rejected\":%llu,\"p10_ms\":%.0f,"
          "\"p50_ms\":%.0f,\"p90_ms\":%.0f,\"p99_ms\":%.0f}%s\n",
          r.clients, r.tx_per_client, r.enrolled,
          static_cast<unsigned long long>(r.accepted),
          static_cast<unsigned long long>(r.rejected), r.p10_ms, r.p50_ms,
          r.p90_ms, r.p99_ms, i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(out, "]}\n");
    std::fclose(out);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}

// ------------------------------------------------------------------ F11

/// One credential set shared by the whole synthetic population. The SP
/// keys trust per client id (the certificate names the platform, and
/// nothing in the protocol requires distinct keys per client), so one
/// CA-certified AIK and one confirmation keypair serve any population
/// size -- while every quote and confirmation signature stays a genuine
/// RSA signature the SP verifies in full.
struct SyntheticCreds {
  tpm::PrivacyCa ca;
  crypto::RsaPrivateKey aik;
  Bytes aik_cert;
  crypto::RsaPrivateKey confirm_key;
  Bytes confirm_pub;
  core::AttestationPolicy policy;
};

SyntheticCreds make_creds() {
  crypto::HmacDrbg drbg(bytes_of("f11-keys"));
  const auto rand = [&](std::size_t n) { return drbg.generate(n); };
  SyntheticCreds creds{tpm::PrivacyCa(bytes_of("f11-ca"), 768),
                       crypto::rsa_generate(768, rand),
                       {},
                       crypto::rsa_generate(768, rand),
                       {},
                       core::attestation_policy(
                           drtm::DrtmTechnology::kAmdSkinit)};
  creds.aik_cert =
      creds.ca.certify("f11-platform", creds.aik.public_key()).serialize();
  creds.confirm_pub = creds.confirm_key.public_key().serialize();
  return creds;
}

std::string client_name(std::size_t i) {
  return "f11-client-" + std::to_string(i);
}

/// Enrolls clients [lo, hi) through the cluster with synthetic quotes.
void enroll_range(cluster::VerifierCluster& cluster,
                  const SyntheticCreds& creds, std::size_t lo, std::size_t hi,
                  std::atomic<std::size_t>& enrolled) {
  using namespace tp::core;
  for (std::size_t i = lo; i < hi; ++i) {
    const std::string id = client_name(i);
    EnrollBegin begin;
    begin.client_id = id;
    const auto r1 =
        cluster.call(id, envelope(MsgType::kEnrollBegin, begin.serialize()));
    if (r1.status != svc::SvcStatus::kOk) continue;
    auto opened = open_envelope(r1.frame);
    auto challenge = EnrollChallenge::deserialize(opened.value().second);
    if (!challenge.ok()) continue;

    // A genuine TPM 1.2 quote over the golden PCR state, bound to this
    // enrollment's confirmation key + nonce -- exactly what the virtual
    // TPM would emit, minus the device simulation.
    const Bytes binding = core::enrollment_quote_binding(
        creds.confirm_pub, challenge.value().nonce);
    tpm::QuoteResult quote;
    quote.selection = creds.policy.selection;
    quote.pcr_values = creds.policy.values;
    quote.external_data = binding;
    const auto composite =
        tpm::PcrBank::composite_of(quote.selection, quote.pcr_values);
    quote.signature =
        crypto::rsa_sign(creds.aik, crypto::HashAlg::kSha1,
                         tpm::quote_info(composite.value(), binding));

    EnrollComplete done;
    done.client_id = id;
    done.confirmation_pubkey = creds.confirm_pub;
    done.quote = quote.serialize();
    done.aik_certificate = creds.aik_cert;
    const auto r2 =
        cluster.call(id, envelope(MsgType::kEnrollComplete, done.serialize()));
    if (r2.status != svc::SvcStatus::kOk) continue;
    auto result_frame = open_envelope(r2.frame);
    auto result = EnrollResult::deserialize(result_frame.value().second);
    if (result.ok() && result.value().accepted) {
      enrolled.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

struct ShardSample {
  std::uint32_t id = 0;
  std::size_t enrolled = 0;
  std::size_t memory_bytes = 0;
};

struct ClusterRow {
  std::size_t shards = 0;
  std::size_t clients = 0;
  std::size_t enrolled = 0;
  std::size_t confirms = 0;
  std::uint64_t accepted = 0;
  double enroll_s = 0;
  double elapsed_ms = 0;
  double accepts_per_sec = 0;
  std::vector<ShardSample> per_shard;
};

ClusterRow run_cluster(const SyntheticCreds& creds, std::size_t shards,
                       std::size_t clients, std::size_t confirms) {
  using namespace tp::core;
  sp::SpConfig sp_cfg;
  sp_cfg.golden_pcr17 = core::golden_pcr17();
  sp_cfg.ca_public = creds.ca.public_key();
  sp_cfg.seed = bytes_of("f11-sp");
  sp_cfg.accepted_policies = {creds.policy};
  // Size the per-shard tables for the shard's SHARE of the load, not the
  // population: that is the flat-memory claim under test. Enroll sessions
  // are transient (begin->complete back to back), tx sessions must hold
  // the shard's slice of the in-flight confirm corpus.
  sp_cfg.enroll_session_capacity = 4096;
  sp_cfg.tx_session_capacity = confirms + 64;
  sp_cfg.session_ttl = SimDuration::seconds(3600);  // minting takes minutes
  sp_cfg.expected_clients = clients / shards + clients / (2 * shards) + 64;

  cluster::ClusterConfig cc;
  cc.num_shards = shards;
  cc.svc.queue_depth = 1024;
  cc.svc.max_batch = 16;
  cc.svc.sp = sp_cfg;
  cluster::VerifierCluster cluster(cc);
  cluster.start();

  // Phase 1: enroll the population (untimed for throughput, but reported;
  // backend latency off -- enrollment cost is client-key verification).
  const unsigned hw = std::thread::hardware_concurrency();
  const std::size_t n_threads =
      std::min<std::size_t>(std::max(1u, hw), 8);
  std::atomic<std::size_t> enrolled{0};
  const auto enroll_start = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> workers;
    const std::size_t chunk = (clients + n_threads - 1) / n_threads;
    for (std::size_t t = 0; t < n_threads; ++t) {
      const std::size_t lo = t * chunk;
      const std::size_t hi = std::min(clients, lo + chunk);
      if (lo >= hi) break;
      workers.emplace_back([&, lo, hi] {
        enroll_range(cluster, creds, lo, hi, enrolled);
      });
    }
    for (auto& w : workers) w.join();
  }
  const double enroll_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    enroll_start)
          .count();
  std::printf("  [%zu shard(s)] enrolled %zu/%zu clients in %.1fs "
              "(%.0f enroll/s)\n",
              shards, enrolled.load(), clients, enroll_s,
              enrolled.load() / enroll_s);

  // Phase 2: pre-mint the confirmation corpus (client-side signing work,
  // outside the timing window). Client i confirms one payment; the first
  // `confirms` clients land on shards in ring proportion.
  struct PendingConfirm {
    std::string id;
    Bytes frame;
  };
  std::vector<PendingConfirm> corpus(confirms);
  {
    std::vector<std::thread> workers;
    const std::size_t chunk = (confirms + n_threads - 1) / n_threads;
    for (std::size_t t = 0; t < n_threads; ++t) {
      const std::size_t lo = t * chunk;
      const std::size_t hi = std::min(confirms, lo + chunk);
      if (lo >= hi) break;
      workers.emplace_back([&, lo, hi] {
        for (std::size_t i = lo; i < hi; ++i) {
          const std::string id = client_name(i);
          TxSubmit submit;
          submit.client_id = id;
          submit.summary = "pay " + std::to_string(i);
          submit.payload = Bytes(64, 1);
          const auto r = cluster.call(
              id, envelope(MsgType::kTxSubmit, submit.serialize()));
          if (r.status != svc::SvcStatus::kOk) std::abort();
          auto challenge =
              TxChallenge::deserialize(open_envelope(r.frame).value().second);
          if (!challenge.ok()) std::abort();
          TxConfirm confirm;
          confirm.client_id = id;
          confirm.tx_id = challenge.value().tx_id;
          confirm.verdict = Verdict::kConfirmed;
          confirm.signature = crypto::rsa_sign(
              creds.confirm_key, crypto::HashAlg::kSha256,
              confirmation_statement(submit.digest(),
                                     challenge.value().nonce,
                                     Verdict::kConfirmed));
          corpus[i] = PendingConfirm{
              id, envelope(MsgType::kTxConfirm, confirm.serialize())};
        }
      });
    }
    for (auto& w : workers) w.join();
  }

  // Phase 3: timed confirmation blast in the latency-hiding regime --
  // each accept pays the modeled 500us backing-store commit, which is
  // the component shards overlap (same methodology as F3c).
  for (const std::uint32_t sid : cluster.shard_ids()) {
    cluster.shard_service(sid).set_simulated_backend_latency(
        std::chrono::microseconds(500));
  }
  std::atomic<std::uint64_t> accepted{0};
  const auto blast_start = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> producers;
    const std::size_t chunk = (confirms + n_threads - 1) / n_threads;
    for (std::size_t t = 0; t < n_threads; ++t) {
      const std::size_t lo = t * chunk;
      const std::size_t hi = std::min(confirms, lo + chunk);
      if (lo >= hi) break;
      producers.emplace_back([&, lo, hi] {
        std::vector<std::future<svc::SvcResponse>> pending;
        pending.reserve(hi - lo);
        for (std::size_t i = lo; i < hi; ++i) {
          pending.push_back(
              cluster.submit(corpus[i].id, std::move(corpus[i].frame)));
        }
        std::uint64_t ok = 0;
        for (auto& future : pending) {
          svc::SvcResponse response = future.get();
          if (response.status != svc::SvcStatus::kOk) continue;
          auto opened = open_envelope(response.frame);
          if (!opened.ok()) continue;
          auto result = TxResult::deserialize(opened.value().second);
          if (result.ok() && result.value().accepted) ++ok;
        }
        accepted.fetch_add(ok, std::memory_order_relaxed);
      });
    }
    for (auto& p : producers) p.join();
  }
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - blast_start)
          .count();

  ClusterRow row;
  row.shards = shards;
  row.clients = clients;
  row.enrolled = enrolled.load();
  row.confirms = confirms;
  row.accepted = accepted.load();
  row.enroll_s = enroll_s;
  row.elapsed_ms = elapsed_ms;
  row.accepts_per_sec = accepted.load() / (elapsed_ms / 1000.0);

  // Per-shard occupancy + footprint, read quiesced.
  cluster.drain();
  cluster.publish_gauges();
  for (const std::uint32_t sid : cluster.shard_ids()) {
    ShardSample sample;
    sample.id = sid;
    sample.enrolled = cluster.shard_sp(sid).enrolled_count();
    sample.memory_bytes = cluster.shard_sp(sid).memory_bytes();
    row.per_shard.push_back(sample);
  }

  std::printf("  [%zu shard(s)] %llu/%zu confirms accepted in %.0fms "
              "(%.0f accepts/s)\n",
              shards, static_cast<unsigned long long>(row.accepted),
              confirms, elapsed_ms, row.accepts_per_sec);
  for (const ShardSample& s : row.per_shard) {
    std::printf("    shard %u: enrolled=%zu memory=%.1fMB\n", s.id,
                s.enrolled, s.memory_bytes / 1e6);
  }
  if (row.accepted != confirms) {
    std::fprintf(stderr, "FATAL: %zu confirms sent but %llu accepted\n",
                 confirms, static_cast<unsigned long long>(row.accepted));
    std::abort();
  }
  return row;
}

int run_f11(std::size_t clients, std::size_t shards, std::size_t confirms,
            const std::string& json_path) {
  if (shards < 2 || clients < shards) {
    std::fprintf(stderr, "--cluster needs --shards>=2, --clients>=shards\n");
    return 2;
  }
  // The 1-shard baseline serves clients/shards clients, and both rows
  // confirm through the same client indices -- so the corpus can only be
  // as large as the baseline's population.
  confirms = std::min(confirms, clients / shards);
  std::printf("=== F11: verifier cluster scale-out "
              "(%zu clients, %zu shards, %zu confirms) ===\n\n",
              clients, shards, confirms);
  const SyntheticCreds creds = make_creds();

  // Baseline: one shard serving its proportional population slice. The
  // flat-memory claim compares the K-shard per-shard footprint to this.
  ClusterRow base = run_cluster(creds, 1, clients / shards, confirms);
  ClusterRow full = run_cluster(creds, shards, clients, confirms);

  std::size_t min_mem = SIZE_MAX, max_mem = 0;
  for (const ShardSample& s : full.per_shard) {
    min_mem = std::min(min_mem, s.memory_bytes);
    max_mem = std::max(max_mem, s.memory_bytes);
  }
  const double mem_ratio =
      static_cast<double>(max_mem) /
      static_cast<double>(base.per_shard.front().memory_bytes);
  const double speedup = full.accepts_per_sec / base.accepts_per_sec;
  std::printf("\nsummary: aggregate speedup %.2fx (%zu shards vs 1), "
              "per-shard memory %.2fx the single-shard baseline "
              "(max %.1fMB, min %.1fMB)\n",
              speedup, shards, mem_ratio, max_mem / 1e6, min_mem / 1e6);

  if (!json_path.empty()) {
    std::FILE* out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(out, "{\"bench\":\"fleet_population_cluster\","
                      "\"clients\":%zu,\"shards\":%zu,\"confirms\":%zu,"
                      "\"rows\":[\n",
                 clients, shards, confirms);
    const ClusterRow* rows[] = {&base, &full};
    for (std::size_t i = 0; i < 2; ++i) {
      const ClusterRow& r = *rows[i];
      std::fprintf(out,
                   "  {\"shards\":%zu,\"clients\":%zu,\"enrolled\":%zu,"
                   "\"confirms\":%zu,\"accepted\":%llu,\"enroll_s\":%.1f,"
                   "\"elapsed_ms\":%.1f,\"accepts_per_sec\":%.0f,"
                   "\"per_shard\":[",
                   r.shards, r.clients, r.enrolled, r.confirms,
                   static_cast<unsigned long long>(r.accepted), r.enroll_s,
                   r.elapsed_ms, r.accepts_per_sec);
      for (std::size_t j = 0; j < r.per_shard.size(); ++j) {
        const ShardSample& s = r.per_shard[j];
        std::fprintf(out,
                     "{\"shard\":%u,\"enrolled\":%zu,\"memory_bytes\":%zu}%s",
                     s.id, s.enrolled, s.memory_bytes,
                     j + 1 < r.per_shard.size() ? "," : "");
      }
      std::fprintf(out, "]}%s\n", i == 0 ? "," : "");
    }
    std::fprintf(out,
                 "],\"summary\":{\"aggregate_speedup\":%.2f,"
                 "\"per_shard_memory_ratio\":%.3f}}\n",
                 speedup, mem_ratio);
    std::fclose(out);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool cluster_mode = false;
  std::size_t clients = 100000, shards = 4, confirms = 8192;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--cluster") {
      cluster_mode = true;
    } else if (arg.rfind("--clients=", 0) == 0) {
      clients = std::strtoull(arg.c_str() + 10, nullptr, 10);
    } else if (arg.rfind("--shards=", 0) == 0) {
      shards = std::strtoull(arg.c_str() + 9, nullptr, 10);
    } else if (arg.rfind("--confirms=", 0) == 0) {
      confirms = std::strtoull(arg.c_str() + 11, nullptr, 10);
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--cluster] [--clients=N] [--shards=K] "
                   "[--confirms=M] [--json=<path>]\n",
                   argv[0]);
      return 2;
    }
  }
  if (cluster_mode) {
    return run_f11(clients, shards, confirms, json_path);
  }
  return run_f3b(json_path);
}
