// Experiment F3b: population view -- one SP, many heterogeneous clients.
//
// Complements F3 (raw verifier throughput) with the deployment question:
// when a mixed fleet (all four TPM chips, both DRTM technologies) runs
// enrollments and confirmations against one SP instance, what does the
// population's latency distribution look like, and does the SP state stay
// consistent? Reports per-percentile confirm machine times across the
// fleet and the SP's final accounting.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "pal/human_agent.h"
#include "sp/fleet.h"
#include "tpm/quote.h"

using namespace tp;

namespace {

double percentile(std::vector<double> values, double p) {
  std::sort(values.begin(), values.end());
  const std::size_t idx = static_cast<std::size_t>(
      p * static_cast<double>(values.size() - 1) + 0.5);
  return values[idx];
}

void run_population(std::size_t n_clients, int tx_per_client,
                    std::vector<tpm::QuoteFormat> backend_mix = {}) {
  sp::FleetConfig cfg;
  cfg.num_clients = n_clients;
  cfg.seed = bytes_of("f3b:" + std::to_string(n_clients));
  cfg.tpm_key_bits = 1024;
  cfg.client_key_bits = 1024;
  cfg.chip_mix = {"Infineon SLB9635", "Broadcom BCM5752",
                  "Atmel AT97SC3203", "STMicro ST19NP18"};
  cfg.technology_mix = {drtm::DrtmTechnology::kAmdSkinit,
                        drtm::DrtmTechnology::kIntelTxt};
  cfg.backend_mix = backend_mix;
  sp::Fleet fleet(cfg);

  const std::size_t enrolled = fleet.enroll_all();
  std::vector<double> confirm_ms;
  std::size_t accepted = 0;
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    devices::HumanParams hp;  // realistic humans, typos included
    pal::HumanAgent agent(devices::HumanModel(hp, SimRng(1000 + i)), "");
    fleet.client(i).set_user_agent(&agent);
    for (int t = 0; t < tx_per_client; ++t) {
      const std::string summary =
          "pay " + std::to_string(t) + " by " + fleet.client_id(i);
      agent.set_intended_summary(summary);
      auto outcome = fleet.client(i).submit_transaction(summary, {});
      if (!outcome.ok()) continue;
      if (outcome.value().accepted) ++accepted;
      confirm_ms.push_back(outcome.value().timing.machine().to_millis());
    }
  }

  std::printf("fleet=%zu clients x %d tx  enrolled=%zu/%zu\n", n_clients,
              tx_per_client, enrolled, n_clients);
  std::printf(
      "  confirm machine ms: p10=%.0f  p50=%.0f  p90=%.0f  p99=%.0f\n",
      percentile(confirm_ms, 0.10), percentile(confirm_ms, 0.50),
      percentile(confirm_ms, 0.90), percentile(confirm_ms, 0.99));
  const auto stats = fleet.sp().stats();
  std::printf("  SP: accepted=%llu rejected=%llu\n",
              static_cast<unsigned long long>(stats.tx_accepted),
              static_cast<unsigned long long>(stats.tx_rejected));
  if (!backend_mix.empty()) {
    std::printf(
        "  by backend: enrolled tpm12=%llu tpm2=%llu  "
        "accepted tpm12=%llu tpm2=%llu\n",
        static_cast<unsigned long long>(
            stats.enrolled_format(tpm::QuoteFormat::kTpm12)),
        static_cast<unsigned long long>(
            stats.enrolled_format(tpm::QuoteFormat::kTpm2)),
        static_cast<unsigned long long>(
            stats.tx_accepted_format(tpm::QuoteFormat::kTpm12)),
        static_cast<unsigned long long>(
            stats.tx_accepted_format(tpm::QuoteFormat::kTpm2)));
  }
}

}  // namespace

int main() {
  std::printf("=== F3b: mixed fleet against one service provider ===\n\n");
  run_population(4, 4);
  run_population(16, 2);
  // Mid-migration round: half the machines quote TPM 1.2 (SHA-1 PCRs,
  // RSA AIK), half TPM 2.0 (SHA-256 PCRs, ECC AK), one SP verifies both.
  std::printf("\n--- mixed 1.2/2.0 backends ---\n");
  run_population(16, 2,
                 {tpm::QuoteFormat::kTpm12, tpm::QuoteFormat::kTpm2});
  std::printf(
      "\nShape check: the population's p10..p99 spread reflects the chip\n"
      "mix (fast Infineon to slow Broadcom), enrollment succeeds for both\n"
      "DRTM technologies, and one SP instance serves the whole fleet with\n"
      "consistent accounting. In the mixed round the per-backend slices\n"
      "must sum to the totals: the SP dispatches on the enrollment's\n"
      "quote-format tag, not on anything the fleet tells it out of band.\n"
      "Occasional rejections are the realistic humans typo-ing out of all\n"
      "retries -- not protocol failures.\n");
  return 0;
}
