// Experiment F3c: concurrent verifier-service throughput (real time).
//
// F3 established the single-core claim: one confirmation costs the SP one
// RSA verify plus bookkeeping. This experiment measures the serving
// runtime built on top of it (src/svc): N ServiceProvider shards behind
// bounded queues, fed by concurrent producers. The claim under test is
// that verification is embarrassingly parallel per client -- sharding by
// client id should scale requests/sec near-linearly in worker count,
// because shards share no protocol state.
//
// Method: for each (workers, queue_depth, backend_us) configuration,
// build a real 8-client fleet, enroll it THROUGH the service, pre-mint
// genuine signed confirmations via real PAL sessions (outside the timing
// window), then blast the confirmation frames from one producer thread
// per client and time until every response arrives. One JSON line per
// configuration.
//
// The primary sweep sets SvcConfig::simulated_backend_latency (a deployed
// SP commits each accepted transaction to a backing store; the paper's
// evaluation abstracts this away). That component is what worker
// concurrency hides, so those rows measure the runtime's actual
// contribution and scale with worker count on any host. The pure-CPU
// reference rows (backend_us = 0) isolate the RSA verify; their scaling
// tracks available cores and is expectedly flat on a single-core
// container.
//
// Usage: bench_svc_throughput [requests_per_config] [--json=<path>]
//   requests_per_config  defaults to 2400
//   --json=<path>        additionally writes every row plus the summary
//                        as one JSON document (BENCH_cluster.json style)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "core/messages.h"
#include "core/trusted_path_pal.h"
#include "devices/human.h"
#include "pal/session.h"
#include "sp/fleet.h"
#include "svc/verifier_service.h"

using namespace tp;
using namespace tp::core;

namespace {

/// Types whatever code the PAL displays (a perfectly obedient user).
class ScriptedCodeAgent : public pal::UserAgent {
 public:
  std::optional<SimDuration> on_prompt(const devices::DisplayContent& screen,
                                       devices::Keyboard& kb) override {
    kb.press_line(devices::KeySource::kPhysical,
                  screen.find_field(devices::kFieldCode));
    return SimDuration::seconds(3);
  }
};

struct ConfigResult {
  std::size_t workers = 0;
  std::size_t queue_depth = 0;
  std::uint64_t backend_us = 0;
  double rps = 0.0;
  std::string json;  // the row exactly as printed (sans newline)
};

/// Knobs for the batched-drain sweep (F10); defaults reproduce the
/// pre-batching worker loop (one frame per wakeup, per-request commit).
struct BatchKnobs {
  std::size_t max_batch = 1;
  bool group_commit = false;
};

/// Mints one genuine pending-at-service confirmation for fleet member `i`.
Bytes mint_confirm_frame(sp::Fleet& fleet, svc::VerifierService& service,
                         pal::SessionDriver& driver, std::size_t i,
                         std::uint64_t seq) {
  const std::string& id = fleet.client_id(i);
  TxSubmit submit{id, "pay " + std::to_string(seq), Bytes(64, 1)};
  const auto challenge_response =
      service.call(id, envelope(MsgType::kTxSubmit, submit.serialize()));
  if (challenge_response.status != svc::SvcStatus::kOk) std::abort();
  auto opened = open_envelope(challenge_response.frame);
  auto challenge = TxChallenge::deserialize(opened.value().second);
  if (!challenge.ok()) std::abort();

  PalConfirmInput in;
  in.tx_summary = submit.summary;
  in.tx_digest = submit.digest();
  in.nonce = challenge.value().nonce;
  in.sealed_key = fleet.client(i).sealed_key_blob();
  auto session = driver.run(make_trusted_path_pal(), in.marshal());
  auto out = PalConfirmOutput::unmarshal(session.value().output);

  TxConfirm confirm;
  confirm.client_id = id;
  confirm.tx_id = challenge.value().tx_id;
  confirm.verdict = out.value().verdict;
  confirm.signature = out.value().signature;
  return envelope(MsgType::kTxConfirm, confirm.serialize());
}

ConfigResult run_config(std::size_t workers, std::size_t queue_depth,
                        std::size_t total_requests, std::uint64_t backend_us,
                        BatchKnobs batch = {}) {
  sp::FleetConfig fleet_config;
  fleet_config.num_clients = 8;
  fleet_config.seed = bytes_of("svc-bench");
  sp::Fleet fleet(fleet_config);

  svc::SvcConfig svc_config;
  svc_config.num_workers = workers;
  svc_config.queue_depth = queue_depth;
  svc_config.simulated_backend_latency = std::chrono::microseconds(backend_us);
  svc_config.max_batch = batch.max_batch;
  svc_config.group_commit = batch.group_commit;
  svc_config.sp = fleet.sp_config();
  svc::VerifierService service(std::move(svc_config));
  service.start();
  fleet.route_frames_to([&service](const std::string& id, BytesView frame) {
    return service.call(id, frame).frame;
  });
  if (fleet.enroll_all() != fleet.size()) std::abort();

  // Pre-mint the confirmation corpus through real PAL sessions; this is
  // client-side work and stays outside the timing window.
  ScriptedCodeAgent agent;
  const std::size_t per_client = total_requests / fleet.size();
  std::vector<std::vector<Bytes>> corpus(fleet.size());
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    pal::SessionDriver driver(fleet.platform(i));
    driver.set_user_agent(&agent);
    corpus[i].reserve(per_client);
    for (std::size_t j = 0; j < per_client; ++j) {
      corpus[i].push_back(mint_confirm_frame(fleet, service, driver, i, j));
    }
  }

  // Timed: one producer per client blasts its confirmations and waits for
  // every response. Accepted responses are counted from the frames.
  std::vector<std::uint64_t> accepted(fleet.size(), 0);
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> producers;
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    producers.emplace_back([&, i] {
      std::vector<std::future<svc::SvcResponse>> pending;
      pending.reserve(corpus[i].size());
      const std::string& id = fleet.client_id(i);
      for (auto& frame : corpus[i]) {
        pending.push_back(service.submit(id, std::move(frame)));
      }
      for (auto& future : pending) {
        svc::SvcResponse response = future.get();
        if (response.status != svc::SvcStatus::kOk) continue;
        auto opened = open_envelope(response.frame);
        if (!opened.ok()) continue;
        auto result = TxResult::deserialize(opened.value().second);
        if (result.ok() && result.value().accepted) ++accepted[i];
      }
    });
  }
  for (auto& t : producers) t.join();
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();

  std::uint64_t total_accepted = 0;
  for (const auto a : accepted) total_accepted += a;
  const std::size_t sent = per_client * fleet.size();
  const double rps = sent / (elapsed_ms / 1000.0);

  obs::HistogramSnapshot latency;
  for (const auto& sample : service.metrics().histograms()) {
    if (sample.name == "svc.request_ns") latency = sample.snapshot;
  }
  const std::uint64_t backpressure =
      service.metrics().counter("svc.backpressure_waits").value();
  service.drain();

  obs::HistogramSnapshot drained;
  for (const auto& sample : service.metrics().histograms()) {
    if (sample.name == "svc.batch_size") drained = sample.snapshot;
  }
  char row[512];
  std::snprintf(
      row, sizeof(row),
      "{\"bench\":\"svc_throughput\",\"workers\":%zu,\"queue_depth\":%zu,"
      "\"backend_us\":%llu,\"max_batch\":%zu,\"group_commit\":%s,"
      "\"mean_drain\":%.1f,\"clients\":%zu,\"requests\":%zu,"
      "\"accepted\":%llu,\"elapsed_ms\":%.1f,\"rps\":%.0f,\"p50_us\":%.1f,"
      "\"p95_us\":%.1f,\"p99_us\":%.1f,\"backpressure_waits\":%llu}",
      workers, queue_depth, static_cast<unsigned long long>(backend_us),
      batch.max_batch, batch.group_commit ? "true" : "false", drained.mean(),
      fleet.size(), sent, static_cast<unsigned long long>(total_accepted),
      elapsed_ms, rps, latency.p50() / 1e3, latency.p95() / 1e3,
      latency.p99() / 1e3, static_cast<unsigned long long>(backpressure));
  std::printf("%s\n", row);
  std::fflush(stdout);
  if (total_accepted != sent) {
    std::fprintf(stderr, "FATAL: %zu sent but %llu accepted\n", sent,
                 static_cast<unsigned long long>(total_accepted));
    std::abort();
  }
  return ConfigResult{workers, queue_depth, backend_us, rps, row};
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t requests = 2400;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else {
      requests = static_cast<std::size_t>(std::atoll(arg.c_str()));
    }
  }

  // Primary sweep: worker scaling with the modeled 500us backing-store
  // commit per request. These rows measure the runtime's latency hiding
  // and scale with workers on any host, including single-core ones.
  constexpr std::uint64_t kBackendUs = 500;
  std::vector<ConfigResult> results;
  for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
    results.push_back(
        run_config(workers, /*queue_depth=*/256, requests, kBackendUs));
  }
  // Pure-CPU reference rows: scaling here tracks available cores, not the
  // runtime (flat on a 1-core container; see EXPERIMENTS.md F3c).
  for (const std::size_t workers : {1u, 4u}) {
    results.push_back(
        run_config(workers, /*queue_depth=*/256, requests, /*backend_us=*/0));
  }
  // Queue-depth sweep at 4 workers: depth trades memory for backpressure
  // stalls; throughput should be depth-insensitive once depth >> burst.
  for (const std::size_t depth : {16u, 2048u}) {
    results.push_back(run_config(/*workers=*/4, depth, requests, kBackendUs));
  }
  // F10 batched-drain sweep: one wakeup drains up to max_batch frames
  // and the drained batch shares one backing-store commit (group
  // commit) plus one gathered verify pass. max_batch=1 is the control
  // (identical model to the rows above); the gain at 4/16/64 is the
  // amortization of the fixed per-request costs -- the commit first,
  // then the wakeup/verify overheads once the commit no longer
  // dominates.
  for (const std::size_t mb : {1u, 4u, 16u, 64u}) {
    results.push_back(run_config(/*workers=*/4, /*queue_depth=*/256, requests,
                                 kBackendUs,
                                 BatchKnobs{mb, /*group_commit=*/true}));
  }
  // CPU-only batched-drain rows: no commit to amortize, so what remains
  // is the queue hand-off and the batched signature verification.
  for (const std::size_t mb : {16u, 64u}) {
    results.push_back(run_config(/*workers=*/4, /*queue_depth=*/256, requests,
                                 /*backend_us=*/0,
                                 BatchKnobs{mb, /*group_commit=*/false}));
  }

  double rps_1w = 0.0, rps_4w = 0.0, cpu_1w = 0.0, cpu_4w = 0.0;
  for (const auto& r : results) {
    if (r.queue_depth != 256) continue;
    if (r.backend_us == kBackendUs) {
      if (r.workers == 1) rps_1w = r.rps;
      if (r.workers == 4) rps_4w = r.rps;
    } else {
      if (r.workers == 1) cpu_1w = r.rps;
      if (r.workers == 4) cpu_4w = r.rps;
    }
  }
  char summary[160];
  std::snprintf(summary, sizeof(summary),
                "{\"bench\":\"svc_throughput_summary\","
                "\"speedup_1w_to_4w\":%.2f,"
                "\"speedup_1w_to_4w_cpu_only\":%.2f}",
                rps_1w > 0 ? rps_4w / rps_1w : 0.0,
                cpu_1w > 0 ? cpu_4w / cpu_1w : 0.0);
  std::printf("%s\n", summary);

  if (!json_path.empty()) {
    std::FILE* out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(out, "{\"bench\":\"svc_throughput\",\"requests\":%zu,"
                      "\"rows\":[\n",
                 requests);
    for (std::size_t i = 0; i < results.size(); ++i) {
      std::fprintf(out, "  %s%s\n", results[i].json.c_str(),
                   i + 1 < results.size() ? "," : "");
    }
    std::fprintf(out, "],\"summary\":%s}\n", summary);
    std::fclose(out);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
