// Ablation A2: sealed-key design (the paper's) vs quote-per-transaction.
//
// Two ways to convince the SP a human confirmed inside the genuine PAL:
//   sealed-key: enroll once (keygen+Seal+Quote), then Unseal+CPU-sign
//               per transaction;
//   quote:      no enrollment, but TPM_Quote per transaction and an AIK
//               certificate check per transaction at the SP.
// This harness measures the recurring machine cost of both on every chip
// and reports the break-even transaction count.
#include <chrono>
#include <cstdio>

#include "core/trusted_path_pal.h"
#include "crypto/rsa.h"
#include "devices/human.h"
#include "pal/human_agent.h"
#include "pal/session.h"
#include "sp/deployment.h"
#include "tpm/chip_profile.h"

using namespace tp;

namespace {

struct Costs {
  double enroll_ms;          // one-time (sealed-key design only)
  double sealed_confirm_ms;  // per transaction, machine (virtual)
  double quote_confirm_ms;   // per transaction, machine (virtual)
  double sp_sealed_us;       // per transaction, SP real microseconds
  double sp_quote_us;        // per transaction, SP real microseconds
};

Costs run(const std::string& chip) {
  sp::DeploymentConfig cfg;
  cfg.client_id = "ablation";
  cfg.chip_name = chip;
  cfg.seed = bytes_of("a2:" + chip);
  cfg.tpm_key_bits = 1024;
  cfg.client_key_bits = 1024;
  sp::Deployment world(cfg);

  devices::HumanParams hp;
  hp.typo_prob = 0.0;
  pal::HumanAgent agent(devices::HumanModel(hp, SimRng(6)), "pay 10");
  world.client().set_user_agent(&agent);

  Costs costs{};
  // One-time enrollment cost (sealed-key design).
  {
    core::PalEnrollInput in;
    in.nonce = Bytes(20, 1);
    in.key_bits = 1024;
    pal::SessionDriver driver(world.platform());
    auto session = driver.run(core::make_trusted_path_pal(), in.marshal());
    costs.enroll_ms = session.value().timing.machine().to_millis();
  }
  // Recurring: sealed-key confirm (full client path).
  {
    if (!world.client().enroll().ok()) std::abort();
    auto outcome = world.client().submit_transaction("pay 10", {});
    costs.sealed_confirm_ms =
        outcome.value().timing.machine().to_millis();
  }
  // Recurring: quote confirm (direct PAL session; network identical).
  Bytes quote_bytes;
  const Bytes tx_digest(32, 2), nonce(20, 3);
  {
    core::PalQuoteConfirmInput in;
    in.tx_summary = "pay 10";
    in.tx_digest = tx_digest;
    in.nonce = nonce;
    pal::SessionDriver driver(world.platform());
    driver.set_user_agent(&agent);
    auto session = driver.run(core::make_trusted_path_pal(), in.marshal());
    auto out =
        core::PalQuoteConfirmOutput::unmarshal(session.value().output);
    if (!out.ok() || out.value().verdict != core::Verdict::kConfirmed) {
      std::abort();
    }
    costs.quote_confirm_ms = session.value().timing.machine().to_millis();
    quote_bytes = out.value().quote;
  }

  // SP-side real cost per design (the scalability half of the tradeoff):
  // sealed = one RSA verify of the statement; quote = quote-structure
  // verification against the AIK + policy comparison (and in deployment,
  // an AIK certificate chain check on top).
  {
    auto pk = crypto::RsaPublicKey::deserialize(
                  world.client().confirmation_pubkey())
                  .take();
    // Produce one genuine statement signature via the normal path.
    core::TxSubmit submit{"ablation", "pay 10", Bytes(64, 1)};
    const auto challenge = world.sp().begin_transaction(submit);
    core::PalConfirmInput in;
    in.tx_summary = "pay 10";
    in.tx_digest = submit.digest();
    in.nonce = challenge.nonce;
    in.sealed_key = world.client().sealed_key_blob();
    pal::SessionDriver driver(world.platform());
    driver.set_user_agent(&agent);
    auto session = driver.run(core::make_trusted_path_pal(), in.marshal());
    auto out = core::PalConfirmOutput::unmarshal(session.value().output);
    const Bytes statement = core::confirmation_statement(
        submit.digest(), challenge.nonce, core::Verdict::kConfirmed);

    constexpr int kReps = 200;
    auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kReps; ++i) {
      if (!crypto::rsa_verify(pk, crypto::HashAlg::kSha256, statement,
                              out.value().signature)
               .ok()) {
        std::abort();
      }
    }
    auto t1 = std::chrono::steady_clock::now();
    const std::vector<core::AttestationPolicy> accepted = {
        core::attestation_policy(drtm::DrtmTechnology::kAmdSkinit)};
    for (int i = 0; i < kReps; ++i) {
      if (!core::verify_quote_confirmation(
               world.platform().tpm().aik_public(), accepted, tx_digest,
               nonce, quote_bytes)
               .ok()) {
        std::abort();
      }
    }
    auto t2 = std::chrono::steady_clock::now();
    costs.sp_sealed_us =
        std::chrono::duration<double, std::micro>(t1 - t0).count() / kReps;
    costs.sp_quote_us =
        std::chrono::duration<double, std::micro>(t2 - t1).count() / kReps;
  }
  return costs;
}

}  // namespace

int main() {
  std::printf(
      "=== A2 (ablation): sealed-key design vs quote-per-transaction ===\n"
      "(machine virtual ms; sealed-key pays enrollment once)\n\n");
  std::printf("%-20s  %10s  %12s  %12s  %12s  %12s\n", "chip", "enroll",
              "sealed/tx", "quote/tx", "SP sealed", "SP quote");
  std::printf("%-20s  %10s  %12s  %12s  %12s  %12s\n", "", "(vms)", "(vms)",
              "(vms)", "(real us)", "(real us)");
  for (const auto& chip : tpm::standard_chips()) {
    const Costs c = run(chip.name);
    std::printf("%-20s  %10.1f  %12.1f  %12.1f  %12.1f  %12.1f\n",
                chip.name.c_str(), c.enroll_ms, c.sealed_confirm_ms,
                c.quote_confirm_ms, c.sp_sealed_us, c.sp_quote_us);
  }
  std::printf(
      "\nShape check: on the CLIENT the two designs are comparable and the\n"
      "winner is chip-dependent (Quote vs Unseal ordering varies across\n"
      "vendors). The decisive difference is at the SERVER: the sealed-key\n"
      "design costs one RSA verify per transaction, while the quote design\n"
      "pays the quote-structure + policy verification (plus, in deployment,\n"
      "an AIK certificate chain check) -- and it heats up the privacy-\n"
      "sensitive AIK on every purchase. This is why the paper enrolls a\n"
      "key instead of quoting every transaction.\n");
  return 0;
}
