// Experiment T3: enrollment protocol cost breakdown.
//
// The one-time setup cost, per chip and per key size: in-PAL keygen,
// TPM Seal, TPM Quote, network, and SP-side verification (the last one
// measured in real time, since the SP is a normal server and its cost is
// the scalability question).
#include <chrono>
#include <cstdio>

#include "core/trusted_path_pal.h"
#include "pal/session.h"
#include "sp/deployment.h"
#include "tpm/chip_profile.h"

using namespace tp;

namespace {

struct EnrollCost {
  double keygen_ms;      // virtual, in-PAL
  double seal_ms;        // virtual, TPM
  double quote_ms;       // virtual, TPM
  double session_ms;     // virtual, whole session (machine)
  double sp_verify_ms;   // REAL time of ServiceProvider::complete_enrollment
};

EnrollCost run(const std::string& chip, std::uint32_t key_bits) {
  sp::DeploymentConfig cfg;
  cfg.client_id = "bench";
  cfg.chip_name = chip;
  cfg.seed = bytes_of("t3:" + chip + std::to_string(key_bits));
  cfg.tpm_key_bits = key_bits;
  cfg.client_key_bits = key_bits;
  sp::Deployment world(cfg);

  // Direct PAL session to read the span log.
  SimClock& clock = world.clock();
  const std::size_t spans_before = clock.spans().size();
  auto challenge =
      world.sp().begin_enrollment(core::EnrollBegin{"bench"});

  core::PalEnrollInput in;
  in.nonce = challenge.nonce;
  in.key_bits = key_bits;
  pal::SessionDriver driver(world.platform());
  auto session = driver.run(core::make_trusted_path_pal(), in.marshal());
  if (!session.ok() || !session.value().status.ok()) std::abort();
  auto out = core::PalEnrollOutput::unmarshal(session.value().output);

  EnrollCost cost{};
  for (std::size_t i = spans_before; i < clock.spans().size(); ++i) {
    const auto& span = clock.spans()[i];
    if (span.label == "pal:keygen") cost.keygen_ms += span.duration.to_millis();
    if (span.label == "tpm:seal") cost.seal_ms += span.duration.to_millis();
    if (span.label == "tpm:quote") cost.quote_ms += span.duration.to_millis();
  }
  cost.session_ms = session.value().timing.machine().to_millis();

  core::EnrollComplete msg;
  msg.client_id = "bench";
  msg.confirmation_pubkey = out.value().pubkey;
  msg.quote = out.value().quote;
  msg.aik_certificate =
      world.ca().certify("bench", world.platform().tpm().aik_public())
          .serialize();

  const auto wall_start = std::chrono::steady_clock::now();
  const auto result = world.sp().complete_enrollment(msg);
  const auto wall_end = std::chrono::steady_clock::now();
  if (!result.accepted) std::abort();
  cost.sp_verify_ms =
      std::chrono::duration<double, std::milli>(wall_end - wall_start)
          .count();
  return cost;
}

}  // namespace

int main() {
  std::printf("=== T3: enrollment cost breakdown ===\n");
  std::printf("(client columns: virtual ms; SP verify: real ms on this host)\n\n");
  std::printf("%-20s  %6s  %8s  %8s  %8s  %10s  %10s\n", "chip", "bits",
              "keygen", "seal", "quote", "session", "SP verify");
  for (const auto& chip : tpm::standard_chips()) {
    for (std::uint32_t bits : {1024u, 2048u}) {
      const EnrollCost c = run(chip.name, bits);
      std::printf("%-20s  %6u  %8.1f  %8.1f  %8.1f  %10.1f  %10.3f\n",
                  chip.name.c_str(), bits, c.keygen_ms, c.seal_ms,
                  c.quote_ms, c.session_ms, c.sp_verify_ms);
    }
  }
  std::printf(
      "\nShape check: enrollment is seconds (keygen + Seal + Quote), paid\n"
      "once per platform; SP-side verification is a few RSA verifies --\n"
      "milliseconds of real CPU -- so enrollment does not threaten server\n"
      "scalability.\n");
  return 0;
}
