// Experiment T1: TPM operation latency across chips and generations.
//
// Regenerates the paper's TPM-cost table: per-command virtual-time cost
// for each of the four chip profiles. The claim being reproduced: Seal,
// Unseal and Quote cost hundreds of milliseconds and vary several-fold
// across vendors -- they dominate any trusted-path session.
//
// The second table runs the same commands against the TPM 2.0 backend
// (SHA-256 PCR bank, ECC AK). The on-chip work that changes generation
// is the quote: a P-256 ECDSA signature is charged at the profile's
// generic sign cost instead of the RSA-2048 private operation.
#include <cstdio>

#include "tpm/chip_profile.h"
#include "tpm/tpm2_device.h"
#include "tpm/tpm_device.h"

using namespace tp;
using namespace tp::tpm;

namespace {

// Measures one command's virtual cost on a fresh device.
double measure_ms(const ChipProfile& chip, const char* op) {
  SimClock clock;
  TpmDevice tpm(chip, bytes_of("bench"), clock,
                TpmDevice::Options{.key_bits = 768});
  const SimTime before = clock.now();
  const PcrSelection sel = PcrSelection::of({17});
  const Bytes digest(kPcrSize, 0x11);

  const std::string name(op);
  if (name == "PCR_Extend") {
    (void)tpm.pcr_extend(Locality::kPal, 10, digest);
  } else if (name == "PCR_Read") {
    (void)tpm.pcr_read(10);
  } else if (name == "GetRandom(16B)") {
    (void)tpm.get_random(16);
  } else if (name == "Quote") {
    (void)tpm.quote(Bytes(20, 1), sel);
  } else if (name == "Seal") {
    (void)tpm.seal(Locality::kPal, sel, 0xff, Bytes(128, 2));
  } else if (name == "Unseal") {
    auto blob = tpm.seal(Locality::kPal, sel, 0xff, Bytes(128, 2));
    const SimTime mid = clock.now();
    (void)tpm.unseal(Locality::kPal, blob.value());
    return (clock.now() - mid).to_millis();
  } else if (name == "Sign") {
    auto wrapped = tpm.create_wrap_key(sel);
    auto handle = tpm.load_key2(wrapped.value());
    const SimTime mid = clock.now();
    (void)tpm.sign(handle.value(), bytes_of("m"));
    return (clock.now() - mid).to_millis();
  } else if (name == "LoadKey2") {
    auto wrapped = tpm.create_wrap_key(sel);
    const SimTime mid = clock.now();
    (void)tpm.load_key2(wrapped.value());
    return (clock.now() - mid).to_millis();
  } else if (name == "CreateWrapKey") {
    (void)tpm.create_wrap_key(sel);
  } else if (name == "NV_Write") {
    (void)tpm.nv_define(1, 64);
    const SimTime mid = clock.now();
    (void)tpm.nv_write(1, Bytes(32, 1));
    return (clock.now() - mid).to_millis();
  } else if (name == "Counter_Inc") {
    (void)tpm.counter_increment(1);
  }
  return (clock.now() - before).to_millis();
}

// Same shape for the 2.0 device (32-byte digests, ECC quote).
double measure_tpm2_ms(const ChipProfile& chip, const char* op) {
  SimClock clock;
  Tpm2Device tpm(chip, bytes_of("bench2"), clock);
  const SimTime before = clock.now();
  const PcrSelection sel = PcrSelection::of({17});
  const Bytes digest(kPcrSizeSha256, 0x11);

  const std::string name(op);
  if (name == "PCR_Extend") {
    (void)tpm.pcr_extend(Locality::kPal, 10, digest);
  } else if (name == "PCR_Read") {
    (void)tpm.pcr_read(10);
  } else if (name == "GetRandom(16B)") {
    (void)tpm.get_random(16);
  } else if (name == "Quote") {
    (void)tpm.quote(Bytes(32, 1), sel);
  } else if (name == "Seal") {
    (void)tpm.seal(Locality::kPal, sel, 0xff, Bytes(128, 2));
  } else if (name == "Unseal") {
    auto blob = tpm.seal(Locality::kPal, sel, 0xff, Bytes(128, 2));
    const SimTime mid = clock.now();
    (void)tpm.unseal(Locality::kPal, blob.value());
    return (clock.now() - mid).to_millis();
  }
  return (clock.now() - before).to_millis();
}

}  // namespace

int main() {
  const char* ops[] = {"PCR_Extend", "PCR_Read",      "GetRandom(16B)",
                       "Quote",      "Seal",          "Unseal",
                       "Sign",       "LoadKey2",      "CreateWrapKey",
                       "NV_Write",   "Counter_Inc"};

  std::printf("=== T1: TPM 1.2 command latency (virtual ms) ===\n\n");
  std::printf("%-16s", "operation");
  for (const auto& chip : standard_chips()) {
    std::printf("  %20s", chip.name.c_str());
  }
  std::printf("\n");

  for (const char* op : ops) {
    std::printf("%-16s", op);
    for (const auto& chip : standard_chips()) {
      std::printf("  %20.1f", measure_ms(chip, op));
    }
    std::printf("\n");
  }

  std::printf(
      "\nShape check: Seal/Unseal/Quote are 100s of ms on every chip and\n"
      "vary ~3x across vendors; PCR reads are ~1 ms. Storage/attestation\n"
      "commands dominate any session that uses them.\n");

  const char* ops2[] = {"PCR_Extend", "PCR_Read", "GetRandom(16B)",
                        "Quote",      "Seal",     "Unseal"};
  std::printf("\n=== T1b: TPM 2.0 command latency (virtual ms) ===\n\n");
  std::printf("%-16s", "operation");
  for (const auto& chip : standard_chips()) {
    std::printf("  %20s", chip.name.c_str());
  }
  std::printf("\n");
  for (const char* op : ops2) {
    std::printf("%-16s", op);
    for (const auto& chip : standard_chips()) {
      std::printf("  %20.1f", measure_tpm2_ms(chip, op));
    }
    std::printf("\n");
  }
  std::printf(
      "\nShape check: PCR/seal costs carry over from the 1.2 part; the\n"
      "quote drops from the RSA-2048 private operation to the generic\n"
      "sign cost (on-chip ECDSA-P256).\n");
  return 0;
}
