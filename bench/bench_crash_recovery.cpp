// Experiment F13: crash-recovery cost (real time).
//
// PR 10 makes every acked SP mutation durable: a CRC-framed journal
// record is appended inside the frame path, before the reply leaves the
// building. This experiment prices that contract from both ends:
//
//   - Steady-state overhead. bench_svc_throughput's best batched row
//     (1 worker on this single-core host, max_batch 16 -- the gathered
//     signature-verify drain), re-run identically with and without a
//     DurableLog attached to the shard. This is the number the <= 15%
//     acceptance bound is about: journaling amortized into the deployed
//     serving path. A second, signature-free raw row (trusted-path
//     verification off, bare handle_frame loop) shows the worst case:
//     nothing but hashing and session bookkeeping to hide the append
//     and amortized snapshot compaction behind.
//   - Recovery time vs journal length. Populate journals of increasing
//     record counts, then time rebuilding an SP from snapshot + journal
//     (what restart_shard pays while the cluster holds parked frames).
//     A compacted row shows what snapshotting buys; an enrolled-
//     population row isolates the per-client verify-context precompute
//     (Montgomery / window tables), which replay of settled sessions
//     does not touch.
//
// Usage: bench_crash_recovery [tx_per_row] [--json=<path>]
//   tx_per_row    transactions per svc overhead row (default 800)
//   --json=<path> additionally writes every row as one JSON document
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/messages.h"
#include "core/trusted_path_pal.h"
#include "devices/human.h"
#include "pal/session.h"
#include "sp/fleet.h"
#include "sp/service_provider.h"
#include "store/durable_log.h"
#include "store/storage_backend.h"
#include "svc/verifier_service.h"

using namespace tp;
using namespace tp::core;

namespace {

/// Types whatever code the PAL displays (a perfectly obedient user).
class ScriptedCodeAgent : public pal::UserAgent {
 public:
  std::optional<SimDuration> on_prompt(const devices::DisplayContent& screen,
                                       devices::Keyboard& kb) override {
    kb.press_line(devices::KeySource::kPhysical,
                  screen.find_field(devices::kFieldCode));
    return SimDuration::seconds(3);
  }
};

std::vector<std::string> g_rows;

void emit(const char* row) {
  std::printf("%s\n", row);
  std::fflush(stdout);
  g_rows.emplace_back(row);
}

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

std::uint64_t challenge_tx_id(BytesView response) {
  auto opened = open_envelope(response);
  auto challenge = TxChallenge::deserialize(opened.value().second);
  if (!challenge.ok()) std::abort();
  return challenge.value().tx_id;
}

bool accepted(BytesView response) {
  auto opened = open_envelope(response);
  if (!opened.ok() || opened.value().first != MsgType::kTxResult) return false;
  auto result = TxResult::deserialize(opened.value().second);
  return result.ok() && result.value().accepted;
}

// ------------------------------------------------- steady-state overhead

/// bench_svc_throughput's best batched row (1 worker, max_batch 16),
/// optionally with a DurableLog attached to the shard. Confirmations
/// are pre-minted through real PAL sessions outside the timing window
/// (client-side work); the timed blast is one producer thread per
/// client, exactly the F10 method.
double svc_batched_tps(std::size_t total_tx, bool durable) {
  sp::FleetConfig fleet_config;
  fleet_config.num_clients = 8;
  fleet_config.seed = bytes_of("crash-bench");
  fleet_config.tpm_key_bits = 768;
  fleet_config.client_key_bits = 768;
  sp::Fleet fleet(fleet_config);

  store::MemoryBackend backend;
  store::DurableLogConfig log_config;
  log_config.backend = &backend;
  store::DurableLog log(log_config);

  svc::SvcConfig svc_config;
  svc_config.num_workers = 1;  // durable mode serializes one shard
  svc_config.queue_depth = 64;
  svc_config.max_batch = 16;
  svc_config.sp = fleet.sp_config();
  if (durable) svc_config.sp.durable = &log;
  svc::VerifierService service(std::move(svc_config));
  service.start();
  fleet.route_frames_to([&service](const std::string& id, BytesView frame) {
    return service.call(id, frame).frame;
  });
  if (fleet.enroll_all() != fleet.size()) std::abort();

  ScriptedCodeAgent agent;
  const std::size_t per_client = total_tx / fleet.size();
  std::vector<std::vector<Bytes>> corpus(fleet.size());
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    pal::SessionDriver driver(fleet.platform(i));
    driver.set_user_agent(&agent);
    const std::string& id = fleet.client_id(i);
    corpus[i].reserve(per_client);
    for (std::size_t j = 0; j < per_client; ++j) {
      TxSubmit submit{id, "pay " + std::to_string(j), Bytes(64, 1)};
      const auto challenge_response =
          service.call(id, envelope(MsgType::kTxSubmit, submit.serialize()));
      if (challenge_response.status != svc::SvcStatus::kOk) std::abort();
      auto opened = open_envelope(challenge_response.frame);
      auto challenge = TxChallenge::deserialize(opened.value().second);
      if (!challenge.ok()) std::abort();

      PalConfirmInput in;
      in.tx_summary = submit.summary;
      in.tx_digest = submit.digest();
      in.nonce = challenge.value().nonce;
      in.sealed_key = fleet.client(i).sealed_key_blob();
      auto session = driver.run(make_trusted_path_pal(), in.marshal());
      auto out = PalConfirmOutput::unmarshal(session.value().output);
      TxConfirm confirm{id, challenge.value().tx_id, out.value().verdict,
                        out.value().signature};
      corpus[i].push_back(envelope(MsgType::kTxConfirm, confirm.serialize()));
    }
  }

  std::vector<std::uint64_t> ok(fleet.size(), 0);
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> producers;
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    producers.emplace_back([&, i] {
      std::vector<std::future<svc::SvcResponse>> pending;
      pending.reserve(corpus[i].size());
      const std::string& id = fleet.client_id(i);
      for (auto& frame : corpus[i]) {
        pending.push_back(service.submit(id, std::move(frame)));
      }
      for (auto& future : pending) {
        svc::SvcResponse response = future.get();
        if (response.status == svc::SvcStatus::kOk &&
            accepted(response.frame)) {
          ++ok[i];
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  const double elapsed = ms_since(start);
  service.drain();

  std::uint64_t total_ok = 0;
  for (const auto a : ok) total_ok += a;
  if (total_ok != per_client * fleet.size()) std::abort();
  return static_cast<double>(total_ok) / (elapsed / 1000.0);
}

/// Signature-free transactions/sec (submit + confirm per tx): the
/// worst-case overhead profile, nothing expensive to hide the append
/// behind.
double raw_path_tps(std::size_t total_tx, bool durable) {
  store::MemoryBackend backend;
  store::DurableLogConfig log_config;
  log_config.backend = &backend;
  store::DurableLog log(log_config);

  sp::SpConfig sp_config;
  sp_config.require_trusted_path = false;
  sp_config.seed = bytes_of("crash-bench-raw");
  if (durable) sp_config.durable = &log;
  sp::ServiceProvider sp(sp_config);

  const auto start = std::chrono::steady_clock::now();
  std::uint64_t ok = 0;
  for (std::size_t i = 0; i < total_tx; ++i) {
    const std::string id = "raw-" + std::to_string(i % 16);
    TxSubmit submit{id, "pay " + std::to_string(i), Bytes(32, 2)};
    const Bytes challenge =
        sp.handle_frame(envelope(MsgType::kTxSubmit, submit.serialize()));
    TxConfirm confirm{id, challenge_tx_id(challenge), Verdict::kConfirmed,
                      Bytes{}};
    if (accepted(sp.handle_frame(
            envelope(MsgType::kTxConfirm, confirm.serialize())))) {
      ++ok;
    }
  }
  const double elapsed = ms_since(start);
  if (ok != total_tx) std::abort();
  return static_cast<double>(ok) / (elapsed / 1000.0);
}

void overhead_row(const char* path, double plain_tps, double durable_tps) {
  const double overhead_pct = (plain_tps / durable_tps - 1.0) * 100.0;
  char row[256];
  std::snprintf(row, sizeof(row),
                "{\"bench\":\"crash_recovery\",\"row\":\"overhead\","
                "\"path\":\"%s\",\"plain_tps\":%.0f,\"durable_tps\":%.0f,"
                "\"overhead_pct\":%.1f}",
                path, plain_tps, durable_tps, overhead_pct);
  emit(row);
}

// ----------------------------------------------- recovery vs journal size

/// Fills a journal with `total_tx` signature-free transactions
/// (2 records each: tx_begin + tx_settle), compaction disabled.
void populate_raw_journal(store::StorageBackend& backend,
                          std::size_t total_tx) {
  store::DurableLogConfig log_config;
  log_config.backend = &backend;
  log_config.compact_journal_bytes = 0;  // pure-replay rows: never compact
  store::DurableLog log(log_config);
  sp::SpConfig sp_config;
  sp_config.require_trusted_path = false;
  sp_config.seed = bytes_of("crash-bench-recovery");
  sp_config.durable = &log;
  sp::ServiceProvider sp(sp_config);
  for (std::size_t i = 0; i < total_tx; ++i) {
    const std::string id = "rec-" + std::to_string(i % 16);
    TxSubmit submit{id, "pay " + std::to_string(i), Bytes(32, 3)};
    const Bytes challenge =
        sp.handle_frame(envelope(MsgType::kTxSubmit, submit.serialize()));
    TxConfirm confirm{id, challenge_tx_id(challenge), Verdict::kConfirmed,
                      Bytes{}};
    (void)sp.handle_frame(envelope(MsgType::kTxConfirm, confirm.serialize()));
  }
}

/// Times one SP rebuild from the backend's current snapshot + journal.
void recovery_row(const char* label, store::StorageBackend& backend) {
  store::DurableLogConfig log_config;
  log_config.backend = &backend;
  log_config.compact_journal_bytes = 0;
  store::DurableLog log(log_config);
  sp::SpConfig sp_config;
  sp_config.require_trusted_path = false;
  sp_config.seed = bytes_of("crash-bench-recovery");
  sp_config.durable = &log;

  const std::uint64_t journal_bytes = backend.journal_bytes();
  const auto start = std::chrono::steady_clock::now();
  sp::ServiceProvider sp(sp_config);
  const double elapsed = ms_since(start);
  const store::RecoveryStats& rs = log.recovery_stats();
  const double records_per_sec =
      elapsed > 0.0 ? rs.replayed_records / (elapsed / 1000.0) : 0.0;
  char row[320];
  std::snprintf(
      row, sizeof(row),
      "{\"bench\":\"crash_recovery\",\"row\":\"recovery\",\"label\":\"%s\","
      "\"journal_bytes\":%llu,\"snapshot_bytes\":%llu,"
      "\"replayed_records\":%llu,\"recover_ms\":%.2f,\"records_per_sec\":"
      "%.0f,\"sessions\":%zu}",
      label, static_cast<unsigned long long>(journal_bytes),
      static_cast<unsigned long long>(rs.snapshot_bytes),
      static_cast<unsigned long long>(rs.replayed_records), elapsed,
      records_per_sec, sp.export_state().tx_sessions.size());
  emit(row);
}

/// Recovery dominated by the per-client verify-context precompute: the
/// journal holds `num_clients` enrollments and nothing else.
void enrolled_recovery_row(std::size_t num_clients) {
  sp::FleetConfig fleet_config;
  fleet_config.num_clients = num_clients;
  fleet_config.seed = bytes_of("crash-bench-enroll");
  fleet_config.tpm_key_bits = 768;
  fleet_config.client_key_bits = 768;
  sp::Fleet fleet(fleet_config);

  store::MemoryBackend backend;
  store::DurableLogConfig log_config;
  log_config.backend = &backend;
  {
    store::DurableLog log(log_config);
    sp::SpConfig sp_config = fleet.sp_config();
    sp_config.durable = &log;
    sp::ServiceProvider sp(sp_config);
    fleet.route_frames_to([&sp](const std::string&, BytesView frame) {
      return sp.handle_frame(frame);
    });
    if (fleet.enroll_all() != fleet.size()) std::abort();
  }

  store::DurableLog log(log_config);
  sp::SpConfig sp_config = fleet.sp_config();
  sp_config.durable = &log;
  const auto start = std::chrono::steady_clock::now();
  sp::ServiceProvider sp(sp_config);
  const double elapsed = ms_since(start);
  if (sp.stats_snapshot().enrolled != num_clients) std::abort();
  char row[256];
  std::snprintf(row, sizeof(row),
                "{\"bench\":\"crash_recovery\",\"row\":\"enrolled_recovery\","
                "\"clients\":%zu,\"recover_ms\":%.2f,\"us_per_client\":%.1f}",
                num_clients, elapsed, elapsed * 1000.0 / num_clients);
  emit(row);
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t tx_per_row = 800;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else {
      tx_per_row = static_cast<std::size_t>(std::atoll(arg.c_str()));
    }
  }

  // Steady-state overhead, the batched serving path first (this is the
  // number the <= 15% acceptance bound in EXPERIMENTS.md F13 is about),
  // then the signature-free worst case. Best-of-3 per path, interleaved:
  // on a single-core host the producer threads share the core with the
  // worker, so individual runs are noisy in both directions.
  double svc_plain = 0.0;
  double svc_durable = 0.0;
  double raw_plain = 0.0;
  double raw_durable = 0.0;
  const std::size_t raw_tx = tx_per_row * 8;
  for (int repeat = 0; repeat < 3; ++repeat) {
    svc_plain = std::max(svc_plain, svc_batched_tps(tx_per_row, false));
    svc_durable = std::max(svc_durable, svc_batched_tps(tx_per_row, true));
    raw_plain = std::max(raw_plain, raw_path_tps(raw_tx, false));
    raw_durable = std::max(raw_durable, raw_path_tps(raw_tx, true));
  }
  overhead_row("svc_batched", svc_plain, svc_durable);
  overhead_row("raw", raw_plain, raw_durable);

  // Recovery time vs journal length (pure replay, no snapshot), then
  // what compaction buys on the largest journal, then the enrolled-
  // population precompute cost.
  for (const std::size_t tx : {2000u, 8000u, 32000u}) {
    store::MemoryBackend backend;
    populate_raw_journal(backend, tx);
    char label[32];
    std::snprintf(label, sizeof(label), "journal_%zutx", tx);
    recovery_row(label, backend);
    if (tx == 32000u) {
      // Compact: snapshot the recovered state, reset the journal, and
      // time the snapshot-only rebuild.
      store::DurableLogConfig log_config;
      log_config.backend = &backend;
      log_config.compact_journal_bytes = 0;
      store::DurableLog log(log_config);
      sp::SpConfig sp_config;
      sp_config.require_trusted_path = false;
      sp_config.seed = bytes_of("crash-bench-recovery");
      sp_config.durable = &log;
      sp::ServiceProvider sp(sp_config);
      sp.checkpoint();
      recovery_row("snapshot_32000tx", backend);
    }
  }
  enrolled_recovery_row(64);

  if (!json_path.empty()) {
    std::FILE* out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(out, "[\n");
    for (std::size_t i = 0; i < g_rows.size(); ++i) {
      std::fprintf(out, "  %s%s\n", g_rows[i].c_str(),
                   i + 1 < g_rows.size() ? "," : "");
    }
    std::fprintf(out, "]\n");
    std::fclose(out);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
