// Experiment T2: trusted-path session latency breakdown.
//
// Regenerates the paper's per-phase cost table for both protocol
// sessions (ENROLL once, CONFIRM per transaction) on every chip profile.
// Human time is reported separately from machine time: the paper's
// practicality argument is that machine overhead (around a second,
// TPM-dominated) disappears inside the human's own think/typing time.
#include <cstdio>

#include "core/trusted_path_pal.h"
#include "devices/human.h"
#include "pal/human_agent.h"
#include "pal/session.h"
#include "sp/deployment.h"
#include "tpm/chip_profile.h"

using namespace tp;

namespace {

struct Run {
  pal::SessionTiming enroll;
  pal::SessionTiming confirm;
};

Run run_sessions(const std::string& chip_name) {
  sp::DeploymentConfig cfg;
  cfg.client_id = "bench";
  cfg.chip_name = chip_name;
  cfg.seed = bytes_of("t2:" + chip_name);
  cfg.tpm_key_bits = 1024;
  cfg.client_key_bits = 1024;
  sp::Deployment world(cfg);

  devices::HumanParams hp;
  hp.typo_prob = 0.0;
  pal::HumanAgent agent(devices::HumanModel(hp, SimRng(1)),
                        "pay 100 EUR to bob");
  world.client().set_user_agent(&agent);

  Run run;
  // Enrollment: reconstruct timing from the clock spans via a direct PAL
  // run (the client API hides the session result internals).
  {
    core::PalEnrollInput in;
    in.nonce = Bytes(20, 1);
    in.key_bits = 1024;
    pal::SessionDriver driver(world.platform());
    auto session = driver.run(core::make_trusted_path_pal(), in.marshal());
    run.enroll = session.value().timing;
  }
  // Confirmation via the full client path.
  {
    if (!world.client().enroll().ok()) std::abort();
    auto outcome = world.client().submit_transaction("pay 100 EUR to bob",
                                                     Bytes(512, 7));
    run.confirm = outcome.value().timing;
  }
  return run;
}

void print_row(const char* label, double broadcom, double atmel,
               double infineon, double stm) {
  std::printf("%-22s  %10.1f  %10.1f  %10.1f  %10.1f\n", label, broadcom,
              atmel, infineon, stm);
}

void print_table(const char* title,
                 const std::vector<pal::SessionTiming>& t) {
  std::printf("\n--- %s (virtual ms) ---\n", title);
  std::printf("%-22s  %10s  %10s  %10s  %10s\n", "phase", "Broadcom",
              "Atmel", "Infineon", "STMicro");
  auto ms = [](SimDuration d) { return d.to_millis(); };
  print_row("suspend OS", ms(t[0].suspend), ms(t[1].suspend),
            ms(t[2].suspend), ms(t[3].suspend));
  print_row("SKINIT (launch+hash)", ms(t[0].skinit), ms(t[1].skinit),
            ms(t[2].skinit), ms(t[3].skinit));
  print_row("PAL env setup", ms(t[0].pal_setup), ms(t[1].pal_setup),
            ms(t[2].pal_setup), ms(t[3].pal_setup));
  print_row("TPM commands", ms(t[0].tpm), ms(t[1].tpm), ms(t[2].tpm),
            ms(t[3].tpm));
  print_row("PAL compute", ms(t[0].pal_compute), ms(t[1].pal_compute),
            ms(t[2].pal_compute), ms(t[3].pal_compute));
  print_row("resume OS", ms(t[0].resume), ms(t[1].resume), ms(t[2].resume),
            ms(t[3].resume));
  print_row("MACHINE TOTAL", ms(t[0].machine()), ms(t[1].machine()),
            ms(t[2].machine()), ms(t[3].machine()));
  print_row("human (excluded)", ms(t[0].user), ms(t[1].user), ms(t[2].user),
            ms(t[3].user));
}

}  // namespace

int main() {
  std::printf("=== T2: trusted-path session latency breakdown ===\n");

  const char* chips[] = {"Broadcom BCM5752", "Atmel AT97SC3203",
                         "Infineon SLB9635", "STMicro ST19NP18"};
  std::vector<pal::SessionTiming> enroll, confirm;
  for (const char* chip : chips) {
    const Run run = run_sessions(chip);
    enroll.push_back(run.enroll);
    confirm.push_back(run.confirm);
  }

  print_table("ENROLL session (once per platform)", enroll);
  print_table("CONFIRM session (per transaction)", confirm);

  std::printf(
      "\nShape check: CONFIRM machine time is TPM-dominated (Unseal) and\n"
      "lands around 0.3-1.1 s depending on the chip -- well under the\n"
      "human's own response time. ENROLL additionally pays keygen + Seal +\n"
      "Quote and is the expensive (but one-time) session.\n");
  return 0;
}
