// Captcha replacement: the paper's "immediate value" argument, live.
//
// A service wants proof that requests come from a human. It can deploy
// captchas -- and lose the arms race against solving services -- or
// require one trusted-path confirmation. This example pits both defences
// against the same bot fleet and the same (simulated) human population
// and prints the operator's dashboard.
#include <cstdio>

#include "captcha/captcha.h"
#include "host/adversary.h"
#include "pal/human_agent.h"
#include "sp/deployment.h"

using namespace tp;

namespace {

constexpr int kBots = 200;
constexpr int kHumans = 200;

struct Dashboard {
  int humans_served = 0;
  int bots_blocked = 0;
  int bots_admitted = 0;
};

Dashboard run_captcha_defence(double distortion, double bot_strength) {
  Dashboard board;
  captcha::CaptchaService service(bytes_of("signup"));
  captcha::OcrAttacker bot(bot_strength, SimRng(7));
  devices::HumanParams hp;
  SimRng human_rng(13);

  for (int i = 0; i < kBots; ++i) {
    const auto challenge = service.issue(distortion);
    if (service.verify(challenge.id, bot.attempt(challenge)).ok()) {
      ++board.bots_admitted;
    } else {
      ++board.bots_blocked;
    }
  }
  const double p = captcha::human_solve_prob(hp.captcha_solve_prob,
                                             distortion);
  for (int i = 0; i < kHumans; ++i) {
    if (human_rng.chance(p)) ++board.humans_served;
  }
  return board;
}

Dashboard run_trusted_path_defence() {
  Dashboard board;

  sp::DeploymentConfig config;
  config.client_id = "visitor";
  config.seed = bytes_of("captcha-replacement");
  config.tpm_key_bits = 768;
  config.client_key_bits = 768;
  sp::Deployment world(config);

  devices::HumanParams hp;
  hp.typo_prob = 0.0;
  pal::HumanAgent visitor(devices::HumanModel(hp, SimRng(3)), "");
  world.client().set_user_agent(&visitor);
  if (!world.client().enroll().ok()) std::abort();

  // Humans: each request is a trusted-path confirmation.
  for (int i = 0; i < kHumans; ++i) {
    const std::string action = "signup request #" + std::to_string(i);
    visitor.set_intended_summary(action);
    auto outcome = world.client().submit_transaction(action, {});
    if (outcome.ok() && outcome.value().accepted) ++board.humans_served;
  }

  // Bots: the full malware kit, no human at the machine.
  host::MalwareKit bot(world.platform(), world.client_endpoint(), "visitor",
                       world.client().sealed_key_blob(), SimRng(99));
  for (int i = 0; i < kBots / 4; ++i) {
    const std::string action = "bot signup #" + std::to_string(i);
    for (const auto& outcome :
         {bot.forge_signature(action, {}),
          bot.confirm_without_signature(action, {}),
          bot.inject_keystrokes(action, {}),
          bot.run_tampered_pal(action, {})}) {
      if (outcome.sp_accepted) {
        ++board.bots_admitted;
      } else {
        ++board.bots_blocked;
      }
    }
  }
  return board;
}

void print(const char* label, const Dashboard& board) {
  std::printf("%-34s  humans served %3d/%d   bots blocked %3d/%d (%d got in)\n",
              label, board.humans_served, kHumans, board.bots_blocked,
              kBots, board.bots_admitted);
}

}  // namespace

int main() {
  std::printf("=== defending a signup endpoint: captcha vs trusted path ===\n\n");
  std::printf("bot fleet: OCR strength 0.9 (outsourced human solving)\n\n");

  print("captcha, mild distortion (0.2)", run_captcha_defence(0.2, 0.9));
  print("captcha, heavy distortion (0.8)", run_captcha_defence(0.8, 0.9));
  const Dashboard tp_board = run_trusted_path_defence();
  print("trusted path", tp_board);

  std::printf(
      "\nThe captcha operator must choose between admitting bots and\n"
      "locking out humans; the trusted path serves every human and\n"
      "admits zero bots, at a human cost comparable to one easy captcha\n"
      "(see bench_human_cost for the F4 numbers).\n");
  return tp_board.bots_admitted == 0 ? 0 : 1;
}
