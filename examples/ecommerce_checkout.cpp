// E-commerce scenario: a shop requires trusted-path confirmation for
// checkout, exactly the deployment the paper's introduction motivates.
//
// Shows: a multi-item purchase confirmed by the customer; a price-
// manipulation attempt by browser malware that the customer catches on
// the trusted screen; and the shop's audit log distinguishing the two.
#include <cstdio>
#include <vector>

#include "pal/human_agent.h"
#include "sp/deployment.h"

using namespace tp;

namespace {

struct CartItem {
  const char* name;
  int cents;
};

std::string cart_summary(const std::vector<CartItem>& cart) {
  int total = 0;
  for (const auto& item : cart) total += item.cents;
  char buf[128];
  std::snprintf(buf, sizeof buf, "order: %zu items, total %d.%02d EUR",
                cart.size(), total / 100, total % 100);
  return buf;
}

}  // namespace

int main() {
  sp::DeploymentConfig config;
  config.client_id = "customer-17";
  config.seed = bytes_of("ecommerce");
  sp::Deployment shop(config);

  devices::HumanParams careful;
  careful.attention = 1.0;  // this customer reads the trusted screen
  pal::HumanAgent customer(devices::HumanModel(careful, SimRng(42)), "");
  shop.client().set_user_agent(&customer);

  if (!shop.client().enroll().ok()) {
    std::fprintf(stderr, "enrollment failed\n");
    return 1;
  }
  std::printf("customer enrolled with shop\n\n");

  // --- Purchase 1: the benign checkout. ---------------------------------
  const std::vector<CartItem> cart = {
      {"mechanical keyboard", 8900}, {"usb hub", 2450}, {"cable", 799}};
  const std::string summary = cart_summary(cart);
  customer.set_intended_summary(summary);  // what the customer expects

  auto purchase =
      shop.client().submit_transaction(summary, bytes_of("cart-payload-1"));
  std::printf("checkout 1 (%s):\n  -> %s: %s\n", summary.c_str(),
              purchase.value().accepted ? "ACCEPTED" : "REJECTED",
              purchase.value().reason.c_str());

  // --- Purchase 2: browser malware rewrites the order. ------------------
  // The customer thinks they are buying the same cart; compromised client
  // software submits an inflated order. The TRUSTED screen shows the real
  // submission, so the customer rejects it.
  const std::string forged = "order: 1 item, total 2899.99 EUR";
  // (intended summary stays what the customer believes they are buying)
  auto attacked =
      shop.client().submit_transaction(forged, bytes_of("cart-payload-2"));
  std::printf("\ncheckout 2 (malware-rewritten to \"%s\"):\n  -> %s: %s\n",
              forged.c_str(),
              attacked.value().accepted ? "ACCEPTED" : "REJECTED",
              attacked.value().reason.c_str());

  // --- The shop's view. ---------------------------------------------------
  const auto stats = shop.sp().stats();
  std::printf("\nshop audit log: %llu accepted, %llu rejected\n",
              static_cast<unsigned long long>(stats.tx_accepted),
              static_cast<unsigned long long>(stats.tx_rejected));
  for (std::size_t i = 0; i < proto::kRejectCodeCount; ++i) {
    if (stats.rejects_by_code[i] == 0) continue;
    const auto code = static_cast<proto::RejectCode>(i);
    std::printf("  reject %-24s %-40s x%llu\n", proto::reject_code_name(code),
                proto::reject_code_message(code),
                static_cast<unsigned long long>(stats.rejects_by_code[i]));
  }

  return stats.tx_accepted == 1 && stats.tx_rejected == 1 ? 0 : 1;
}
