// Spending-limit scenario: the stateful PAL extension.
//
// A bank caps what can leave the account per period, enforced INSIDE the
// isolated environment: malware that owns the OS cannot raise the limit
// (it is sealed) and cannot roll the spent-counter back (monotonic
// counter check). Demonstrates both attacks failing.
#include <cstdio>

#include "pal/human_agent.h"
#include "sp/deployment.h"

using namespace tp;

namespace {

void report(const char* what,
            const Result<core::TrustedPathClient::LimitedOutcome>& r) {
  if (!r.ok()) {
    std::printf("%-38s -> error: %s\n", what, r.error().to_string().c_str());
    return;
  }
  const auto& o = r.value();
  std::printf("%-38s -> %-8s  spent %llu/%llu cents%s\n", what,
              o.accepted ? "ACCEPTED" : "rejected",
              static_cast<unsigned long long>(o.spent_cents),
              static_cast<unsigned long long>(o.limit_cents),
              o.limit_exceeded ? "  [limit gate]" : "");
}

}  // namespace

int main() {
  std::printf("=== spending limit enforced inside the PAL ===\n\n");

  sp::DeploymentConfig config;
  config.client_id = "saver";
  config.seed = bytes_of("spending-limit");
  sp::Deployment bank(config);

  devices::HumanParams hp;
  hp.typo_prob = 0.0;
  hp.attention = 1.0;
  pal::HumanAgent user(devices::HumanModel(hp, SimRng(12)), "");
  bank.client().set_user_agent(&user);
  if (!bank.client().enroll().ok()) return 1;

  auto spend = [&](std::uint64_t cents, std::uint64_t limit) {
    const std::string summary =
        "transfer " + std::to_string(cents) + " cents";
    user.set_intended_summary(summary);
    return bank.client().submit_limited_transaction(summary, {}, cents,
                                                    limit);
  };

  std::printf("limit initialized at 100.00 EUR (10000 cents)\n\n");
  report("transfer 40.00", spend(4000, 10000));
  report("transfer 40.00", spend(4000, 10000));
  report("transfer 40.00 (would exceed)", spend(4000, 10000));

  std::printf("\n-- malware tries to raise the limit to 1M EUR --\n");
  report("transfer 40.00 (limit=1M in input)", spend(4000, 100000000));

  std::printf("\n-- malware rolls back the state file --\n");
  const Bytes current = bank.client().spending_state_blob();
  // Redo one small spend to advance the counter, then swap the old file.
  report("transfer 10.00", spend(1000, 10000));
  bank.client().set_spending_state_blob(current);
  report("transfer 10.00 (stale state)", spend(1000, 10000));

  std::printf(
      "\nThe cap binds regardless of what the compromised host rewrites:\n"
      "the limit lives in sealed state only the genuine PAL can open, and\n"
      "the TPM monotonic counter makes old state blobs detectably stale.\n");
  return 0;
}
