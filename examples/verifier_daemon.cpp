// Verifier daemon: the full lifecycle of the concurrent serving runtime.
//
//   start  -> spin up N verifier shards behind bounded queues
//   serve  -> a fleet of real clients enrolls and confirms transactions
//             through the service (TPM quote checks, PAL sessions, RSA
//             signature verification -- nothing is stubbed)
//   drain  -> stop accepting, finish every queued request, join workers
//   dump   -> print the metrics registry the service accumulated
//
// Build & run:  ./build/examples/verifier_daemon
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "pal/human_agent.h"
#include "sp/fleet.h"
#include "svc/verifier_service.h"

using namespace tp;

int main() {
  // 1. A small fleet of client machines, each with its own TPM + DRTM
  //    platform, all certified by one Privacy CA.
  sp::FleetConfig fleet_config;
  fleet_config.num_clients = 4;
  fleet_config.seed = bytes_of("daemon");
  sp::Fleet fleet(fleet_config);

  // 2. Start the daemon: two shards, bounded queues, a per-request
  //    deadline. The fleet's members are rerouted from the built-in
  //    single-threaded SP to the service.
  svc::SvcConfig config;
  config.num_workers = 2;
  config.queue_depth = 64;
  config.default_deadline = std::chrono::milliseconds(2000);
  config.sp = fleet.sp_config();
  svc::VerifierService service(std::move(config));
  service.start();
  fleet.route_frames_to([&service](const std::string& id, BytesView frame) {
    return service.call(id, frame).frame;
  });
  std::printf("daemon up: %zu shard(s), queue depth %zu\n",
              service.num_shards(), config.queue_depth);
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    std::printf("  %-18s -> shard %zu\n", fleet.client_id(i).c_str(),
                service.shard_for(fleet.client_id(i)));
  }

  // 3. Serve: enroll everyone, then each client confirms a few payments
  //    over the trusted path. Every frame flows through the service.
  std::vector<std::unique_ptr<pal::HumanAgent>> users;
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    auto agent = std::make_unique<pal::HumanAgent>(
        devices::HumanModel(devices::HumanParams{}, SimRng(7000 + i)),
        "pay 25 EUR to carol");
    fleet.client(i).set_user_agent(agent.get());
    users.push_back(std::move(agent));
  }
  const std::size_t enrolled = fleet.enroll_all();
  std::printf("enrolled %zu/%zu clients through the service\n", enrolled,
              fleet.size());
  if (enrolled != fleet.size()) return 1;

  // Periodic metrics dump: after every serving round, the daemon reports
  // session-table pressure -- live half-open sessions per shard (gauges)
  // and cumulative eviction/expiry counts -- the numbers an operator
  // would watch to spot an EnrollBegin/TxSubmit flood.
  const auto dump_session_metrics = [&service](std::size_t round) {
    std::int64_t open_sessions = 0;
    for (const auto& g : service.metrics().gauges()) {
      if (g.name.find(".enroll_sessions") != std::string::npos ||
          g.name.find(".tx_sessions") != std::string::npos) {
        open_sessions += g.value;
      }
    }
    const sp::SpStats snap = service.stats();
    std::printf(
        "  [round %zu] session tables: open=%lld evicted=%llu expired=%llu\n",
        round, static_cast<long long>(open_sessions),
        static_cast<unsigned long long>(snap.sessions_evicted),
        static_cast<unsigned long long>(snap.sessions_expired));
  };

  std::size_t confirmed = 0, submitted = 0;
  for (std::size_t round = 0; round < 3; ++round) {
    for (std::size_t i = 0; i < fleet.size(); ++i) {
      ++submitted;
      auto outcome = fleet.client(i).submit_transaction(
          "pay 25 EUR to carol",
          bytes_of("order " + std::to_string(round * fleet.size() + i)));
      if (outcome.ok() && outcome.value().accepted) ++confirmed;
    }
    dump_session_metrics(round);
  }
  std::printf("served: %zu/%zu transactions confirmed\n", confirmed,
              submitted);

  // 4. Drain: graceful shutdown -- in-flight requests finish, workers
  //    join. Further submissions would get an immediate kShutdown.
  service.drain();
  std::printf("drained: service %s\n",
              service.running() ? "still running!?" : "stopped");

  // 5. Metrics dump: what the daemon observed, per shard and overall.
  const sp::SpStats totals = service.stats();
  std::printf("\nprotocol totals across shards:\n");
  std::printf("  enrolled=%llu tx_accepted=%llu tx_rejected=%llu\n",
              static_cast<unsigned long long>(totals.enrolled),
              static_cast<unsigned long long>(totals.tx_accepted),
              static_cast<unsigned long long>(totals.tx_rejected));
  std::printf("  sessions: evicted=%llu expired=%llu\n",
              static_cast<unsigned long long>(totals.sessions_evicted),
              static_cast<unsigned long long>(totals.sessions_expired));
  std::printf("\nmetrics registry:\n%s\n",
              service.metrics().to_json().c_str());
  return confirmed == submitted ? 0 : 1;
}
