// Verifier daemon: the full lifecycle of the concurrent serving runtime.
//
//   start  -> spin up N verifier shards behind bounded queues
//   serve  -> a fleet of real clients enrolls and confirms transactions
//             through the service (TPM quote checks, PAL sessions, RSA
//             signature verification -- nothing is stubbed)
//   drain  -> stop accepting, finish every queued request, join workers
//   dump   -> print the metrics registry the service accumulated
//
// Build & run:  ./build/examples/verifier_daemon
//
// Chaos knobs (deterministic fault injection on every member's link):
//   --drop-pct=P    drop P% of messages in each direction (0..100)
//   --fault-seed=N  seed of the replayable fault stream (same N -> same
//                   drops; the daemon prints the seed so a run can be
//                   reproduced exactly)
// Fleet composition:
//   --backend=B     tpm12 (default), tpm2, or mixed -- 'mixed' alternates
//                   TPM 1.2 and 2.0 machines round-robin, so the run
//                   demonstrates one SP verifying RSA/SHA-1 quotes and
//                   ECDSA/SHA-256 quotes side by side (the dump shows the
//                   per-backend accept counters)
// Serving runtime:
//   --max-batch=N   cap on how many queued requests a worker drains per
//                   wakeup (default 16; 1 disables batching). At exit
//                   the daemon summarizes the svc.batch_size histogram:
//                   how much amortization the offered load actually
//                   produced, not just what the cap permitted
//   --shards=N      N > 0 runs a cluster::VerifierCluster of N shared-
//                   nothing shards behind the consistent-hash router
//                   instead of one multi-worker service (0, the default,
//                   keeps the single-service path)
//   --rebalance-at=R  with --shards: after serving round R a new shard
//                   joins live -- sessions and exactly-once state for the
//                   moved key range are handed off mid-run, and the
//                   remaining rounds must still confirm every payment
// Durability (single-service mode):
//   --journal-dir=D write-ahead journal + snapshot under directory D
//                   (fdatasync'd on every acked mutation; forces one
//                   worker, since a DurableLog serializes one shard).
//                   Startup replays whatever the directory holds and
//                   prints the recovery counters, so running the daemon
//                   twice with the same D demonstrates restart across
//                   real process exits
//   --crash-at=N    with --journal-dir: die at cumulative journal byte
//                   offset N -- the append crossing N persists only a
//                   torn prefix, the worker flips the service to
//                   kShutdown, and the daemon restarts the shard from
//                   the journal mid-run, printing what recovery replayed
// With faults on, clients retransmit with backoff and the SP's
// idempotent replay layer absorbs the duplicates -- the run should still
// end with every transaction confirmed.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/verifier_cluster.h"
#include "pal/human_agent.h"
#include "sp/fleet.h"
#include "store/durable_log.h"
#include "store/file_backend.h"
#include "svc/verifier_service.h"

using namespace tp;

namespace {

/// Crash-injection shim over any StorageBackend (FileBackend does not
/// carry one itself): the append crossing the armed cumulative offset
/// persists only the prefix up to it -- a genuinely torn record on disk
/// -- and throws CrashInjected, as does everything after until the
/// daemon clears the point and re-runs recovery.
class CrashableBackend final : public store::StorageBackend {
 public:
  explicit CrashableBackend(store::StorageBackend& inner) : inner_(inner) {}

  void append_journal(BytesView record) override {
    const std::uint64_t at = inner_.appended_total();
    if (crash_at_.has_value() && at + record.size() > *crash_at_) {
      if (*crash_at_ > at) inner_.append_journal(record.first(*crash_at_ - at));
      throw store::CrashInjected(*crash_at_);
    }
    inner_.append_journal(record);
  }
  Bytes read_journal() const override { return inner_.read_journal(); }
  void reset_journal() override { inner_.reset_journal(); }
  void write_snapshot(BytesView blob) override { inner_.write_snapshot(blob); }
  Bytes read_snapshot() const override { return inner_.read_snapshot(); }
  std::uint64_t journal_bytes() const override {
    return inner_.journal_bytes();
  }
  std::uint64_t appended_total() const override {
    return inner_.appended_total();
  }
  bool supports_crash_injection() const override { return true; }
  void crash_at_bytes(std::uint64_t offset) override { crash_at_ = offset; }
  void clear_crash_point() override { crash_at_.reset(); }

 private:
  store::StorageBackend& inner_;
  std::optional<std::uint64_t> crash_at_;
};

}  // namespace

int main(int argc, char** argv) {
  double drop_pct = 0.0;
  std::uint64_t fault_seed = 0x6461656d6f6eull;  // "daemon"
  std::string backend = "tpm12";
  std::size_t max_batch = 16;
  std::size_t shards = 0;
  std::size_t rebalance_at = SIZE_MAX;
  std::string journal_dir;
  std::uint64_t crash_at = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--drop-pct=", 0) == 0) {
      drop_pct = std::strtod(arg.c_str() + 11, nullptr);
    } else if (arg.rfind("--fault-seed=", 0) == 0) {
      fault_seed = std::strtoull(arg.c_str() + 13, nullptr, 10);
    } else if (arg.rfind("--max-batch=", 0) == 0) {
      max_batch = std::strtoull(arg.c_str() + 12, nullptr, 10);
      if (max_batch == 0) {
        std::fprintf(stderr, "--max-batch must be >= 1\n");
        return 2;
      }
    } else if (arg.rfind("--shards=", 0) == 0) {
      shards = std::strtoull(arg.c_str() + 9, nullptr, 10);
    } else if (arg.rfind("--rebalance-at=", 0) == 0) {
      rebalance_at = std::strtoull(arg.c_str() + 15, nullptr, 10);
    } else if (arg.rfind("--journal-dir=", 0) == 0) {
      journal_dir = arg.substr(14);
    } else if (arg.rfind("--crash-at=", 0) == 0) {
      crash_at = std::strtoull(arg.c_str() + 11, nullptr, 10);
      if (crash_at == 0) {
        std::fprintf(stderr, "--crash-at must be >= 1\n");
        return 2;
      }
    } else if (arg.rfind("--backend=", 0) == 0) {
      backend = arg.substr(10);
      if (backend != "tpm12" && backend != "tpm2" && backend != "mixed") {
        std::fprintf(stderr, "--backend must be tpm12, tpm2 or mixed\n");
        return 2;
      }
    } else {
      std::fprintf(
          stderr,
          "usage: %s [--drop-pct=P] [--fault-seed=N] "
          "[--backend=tpm12|tpm2|mixed] [--max-batch=N] [--shards=N] "
          "[--rebalance-at=R] [--journal-dir=D] [--crash-at=N]\n",
          argv[0]);
      return 2;
    }
  }
  if (rebalance_at != SIZE_MAX && shards == 0) {
    std::fprintf(stderr, "--rebalance-at requires --shards\n");
    return 2;
  }
  if (crash_at != 0 && journal_dir.empty()) {
    std::fprintf(stderr, "--crash-at requires --journal-dir\n");
    return 2;
  }
  if (!journal_dir.empty() && shards > 0) {
    std::fprintf(stderr,
                 "--journal-dir applies to the single-service mode; the "
                 "cluster manages per-shard logs itself\n");
    return 2;
  }
  if (drop_pct < 0.0 || drop_pct > 100.0) {
    std::fprintf(stderr, "--drop-pct must be in [0, 100]\n");
    return 2;
  }

  // 1. A small fleet of client machines, each with its own TPM + DRTM
  //    platform, all certified by one Privacy CA.
  sp::FleetConfig fleet_config;
  fleet_config.num_clients = 4;
  fleet_config.seed = bytes_of("daemon");
  if (backend == "tpm2") {
    fleet_config.backend_mix = {tpm::QuoteFormat::kTpm2};
  } else if (backend == "mixed") {
    fleet_config.backend_mix = {tpm::QuoteFormat::kTpm12,
                                tpm::QuoteFormat::kTpm2};
  }
  if (drop_pct > 0.0) {
    net::FaultProfile profile;
    profile.drop_prob = drop_pct / 100.0;
    fleet_config.net.fault =
        net::FaultPlan::symmetric(profile, fault_seed);
    // Faulty link -> retrying clients (a retry replays the SP's cached
    // response, so re-delivery can never double-confirm).
    fleet_config.client_retry.max_attempts = 16;
    fleet_config.client_retry.backoff_base = SimDuration::millis(50);
    std::printf("fault injection: drop %.1f%% each way, seed %llu\n",
                drop_pct, static_cast<unsigned long long>(fault_seed));
  }
  sp::Fleet fleet(fleet_config);

  // 2. Start the daemon: either one service with two worker shards
  //    (default) or, with --shards=N, a verifier cluster of N complete
  //    shared-nothing shards behind the consistent-hash router. Either
  //    way the fleet's members are rerouted from the built-in
  //    single-threaded SP to the serving runtime.
  std::unique_ptr<svc::VerifierService> service;
  std::unique_ptr<cluster::VerifierCluster> vcluster;
  std::unique_ptr<store::FileBackend> file_backend;
  std::unique_ptr<CrashableBackend> crash_backend;
  std::unique_ptr<store::DurableLog> durable_log;
  // (Re)builds the single service; with a journal this replays whatever
  // the directory holds (the crash-restart path calls it again mid-run).
  std::function<void()> start_service;
  svc::SvcConfig config;
  config.num_workers = 2;
  config.queue_depth = 64;
  config.max_batch = max_batch;
  config.default_deadline = std::chrono::milliseconds(2000);
  config.sp = fleet.sp_config();
  if (shards > 0) {
    cluster::ClusterConfig cc;
    cc.num_shards = shards;
    cc.svc = config;
    vcluster = std::make_unique<cluster::VerifierCluster>(std::move(cc));
    vcluster->start();
    fleet.route_frames_to(
        [&vcluster](const std::string& id, BytesView frame) {
          return vcluster->call(id, frame).frame;
        });
    std::printf(
        "daemon up: cluster of %zu shard(s), queue depth %zu, "
        "max batch %zu\n",
        vcluster->num_shards(), config.queue_depth, max_batch);
    for (std::size_t i = 0; i < fleet.size(); ++i) {
      std::printf("  %-18s (%s) -> cluster shard %u\n",
                  fleet.client_id(i).c_str(),
                  tpm::quote_format_name(fleet.backend(i)),
                  vcluster->shard_for(fleet.client_id(i)));
    }
  } else {
    if (!journal_dir.empty()) {
      config.num_workers = 1;  // a DurableLog serializes one shard
      file_backend = std::make_unique<store::FileBackend>(journal_dir);
      crash_backend = std::make_unique<CrashableBackend>(*file_backend);
      if (crash_at != 0) crash_backend->crash_at_bytes(crash_at);
    }
    start_service = [&] {
      if (crash_backend != nullptr) {
        store::DurableLogConfig log_config;
        log_config.backend = crash_backend.get();
        durable_log = std::make_unique<store::DurableLog>(log_config);
        config.sp.durable = durable_log.get();
      }
      service = std::make_unique<svc::VerifierService>(config);
      service->start();
      if (durable_log != nullptr) {
        const store::RecoveryStats& rs = durable_log->recovery_stats();
        std::printf(
            "journal %s: replayed %llu record(s), snapshot %llu bytes, "
            "torn tail %llu byte(s)%s%s\n",
            journal_dir.c_str(),
            static_cast<unsigned long long>(rs.replayed_records),
            static_cast<unsigned long long>(rs.snapshot_bytes),
            static_cast<unsigned long long>(rs.truncated_tail_bytes),
            rs.had_corruption ? ", corruption: " : "",
            rs.had_corruption ? rs.corruption.c_str() : "");
      }
      fleet.route_frames_to(
          [&service](const std::string& id, BytesView frame) {
            return service->call(id, frame).frame;
          });
    };
    start_service();
    std::printf("daemon up: %zu shard(s), queue depth %zu, max batch %zu\n",
                service->num_shards(), config.queue_depth, max_batch);
    for (std::size_t i = 0; i < fleet.size(); ++i) {
      std::printf("  %-18s (%s) -> shard %zu\n", fleet.client_id(i).c_str(),
                  tpm::quote_format_name(fleet.backend(i)),
                  service->shard_for(fleet.client_id(i)));
    }
  }

  // Every registry the runtime writes: the single service's, or each
  // cluster member's private one (per-shard stats must not alias).
  const auto each_registry =
      [&](const std::function<void(obs::Registry&)>& fn) {
        if (vcluster != nullptr) {
          for (const std::uint32_t sid : vcluster->shard_ids()) {
            fn(vcluster->shard_service(sid).metrics());
          }
        } else {
          fn(service->metrics());
        }
      };
  const auto protocol_stats = [&] {
    return vcluster != nullptr ? vcluster->stats() : service->stats();
  };

  // 3. Serve: enroll everyone, then each client confirms a few payments
  //    over the trusted path. Every frame flows through the service.
  std::vector<std::unique_ptr<pal::HumanAgent>> users;
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    auto agent = std::make_unique<pal::HumanAgent>(
        devices::HumanModel(devices::HumanParams{}, SimRng(7000 + i)),
        "pay 25 EUR to carol");
    fleet.client(i).set_user_agent(agent.get());
    users.push_back(std::move(agent));
  }
  const std::size_t enrolled = fleet.enroll_all();
  std::printf("enrolled %zu/%zu clients through the service\n", enrolled,
              fleet.size());
  if (enrolled != fleet.size()) {
    if (service != nullptr && service->crashed()) {
      std::fprintf(stderr,
                   "shard crashed during enrollment (--crash-at=%llu fired "
                   "too early); pick an offset past the enrollment records\n",
                   static_cast<unsigned long long>(crash_at));
    }
    return 1;
  }

  // Periodic metrics dump: after every serving round, the daemon reports
  // session-table pressure -- live half-open sessions per shard (gauges)
  // and cumulative eviction/expiry counts -- the numbers an operator
  // would watch to spot an EnrollBegin/TxSubmit flood.
  const auto dump_session_metrics = [&](std::size_t round) {
    std::int64_t open_sessions = 0;
    each_registry([&open_sessions](obs::Registry& registry) {
      for (const auto& g : registry.gauges()) {
        if (g.name.find(".enroll_sessions") != std::string::npos ||
            g.name.find(".tx_sessions") != std::string::npos) {
          open_sessions += g.value;
        }
      }
    });
    const sp::SpStats snap = protocol_stats();
    std::printf(
        "  [round %zu] session tables: open=%lld evicted=%llu expired=%llu\n",
        round, static_cast<long long>(open_sessions),
        static_cast<unsigned long long>(snap.sessions_evicted),
        static_cast<unsigned long long>(snap.sessions_expired));
  };

  std::size_t confirmed = 0, submitted = 0, shard_restarts = 0;
  for (std::size_t round = 0; round < 3; ++round) {
    for (std::size_t i = 0; i < fleet.size(); ++i) {
      ++submitted;
      const Bytes order =
          bytes_of("order " + std::to_string(round * fleet.size() + i));
      auto outcome =
          fleet.client(i).submit_transaction("pay 25 EUR to carol", order);
      if (service != nullptr && service->crashed()) {
        // The armed journal offset fired mid-frame: the worker saw
        // CrashInjected, the service flipped to kShutdown, and the disk
        // holds a torn record. Restart the shard from the journal --
        // everything acked before the crash replays -- and retry the
        // interrupted transaction against the successor.
        std::printf(
            "  [round %zu] shard crashed at journal offset %llu -- "
            "restarting from the journal\n",
            round, static_cast<unsigned long long>(crash_at));
        service->drain();
        crash_backend->clear_crash_point();
        start_service();
        ++shard_restarts;
        outcome =
            fleet.client(i).submit_transaction("pay 25 EUR to carol", order);
      }
      if (outcome.ok() && outcome.value().accepted) ++confirmed;
    }
    dump_session_metrics(round);
    if (vcluster != nullptr && round == rebalance_at) {
      // Live resize mid-run: a new shard joins, the moved key range's
      // sessions and exactly-once state follow it, and the remaining
      // rounds keep confirming through the new ring.
      const std::uint32_t nid = vcluster->add_shard();
      std::printf(
          "  [round %zu] cluster shard %u joined live: "
          "remapped_keys=%llu handoff_sessions=%llu parked_frames=%llu\n",
          round, nid,
          static_cast<unsigned long long>(vcluster->remapped_keys()),
          static_cast<unsigned long long>(vcluster->handoff_sessions()),
          static_cast<unsigned long long>(vcluster->parked_frames()));
    }
  }
  std::printf("served: %zu/%zu transactions confirmed\n", confirmed,
              submitted);

  // 4. Drain: graceful shutdown -- in-flight requests finish, workers
  //    join. Further submissions would get an immediate kShutdown.
  if (vcluster != nullptr) {
    vcluster->drain();
    std::printf("drained: cluster of %zu shard(s) stopped\n",
                vcluster->num_shards());
  } else {
    service->drain();
    std::printf("drained: service %s\n",
                service->running() ? "still running!?" : "stopped");
  }
  if (durable_log != nullptr) {
    std::printf(
        "journal: %llu byte(s) on disk, seq cursor at %llu, %zu crash "
        "restart(s) this run\n",
        static_cast<unsigned long long>(crash_backend->journal_bytes()),
        static_cast<unsigned long long>(durable_log->next_seq() - 1),
        shard_restarts);
  }

  // 5. Metrics dump: what the daemon observed, per shard and overall.
  const sp::SpStats totals = protocol_stats();
  std::printf("\nprotocol totals across shards:\n");
  std::printf("  enrolled=%llu tx_accepted=%llu tx_rejected=%llu\n",
              static_cast<unsigned long long>(totals.enrolled),
              static_cast<unsigned long long>(totals.tx_accepted),
              static_cast<unsigned long long>(totals.tx_rejected));
  std::printf(
      "  by backend: tpm12 enrolled=%llu accepted=%llu | "
      "tpm2 enrolled=%llu accepted=%llu\n",
      static_cast<unsigned long long>(
          totals.enrolled_format(tpm::QuoteFormat::kTpm12)),
      static_cast<unsigned long long>(
          totals.tx_accepted_format(tpm::QuoteFormat::kTpm12)),
      static_cast<unsigned long long>(
          totals.enrolled_format(tpm::QuoteFormat::kTpm2)),
      static_cast<unsigned long long>(
          totals.tx_accepted_format(tpm::QuoteFormat::kTpm2)));
  std::printf("  sessions: evicted=%llu expired=%llu\n",
              static_cast<unsigned long long>(totals.sessions_evicted),
              static_cast<unsigned long long>(totals.sessions_expired));
  std::uint64_t drains = 0, drained_frames = 0, max_drain = 0;
  each_registry([&](obs::Registry& registry) {
    for (const auto& h : registry.histograms()) {
      if (h.name != "svc.batch_size") continue;
      drains += h.snapshot.count;
      drained_frames += h.snapshot.sum;
      max_drain = std::max(max_drain, h.snapshot.max);
    }
  });
  if (drains > 0) {
    const double mean = static_cast<double>(drained_frames) /
                        static_cast<double>(drains);
    std::printf(
        "  queue batching (cap %zu): %llu drain(s), batch size "
        "mean=%.2f max=%llu -- %.2f requests amortized per wakeup\n",
        max_batch, static_cast<unsigned long long>(drains), mean,
        static_cast<unsigned long long>(max_drain), mean);
  }
  if (drop_pct > 0.0) {
    std::uint64_t injected = 0, retries = 0, replayed = 0;
    for (std::size_t i = 0; i < fleet.size(); ++i) {
      if (fleet.link(i).faults() != nullptr) {
        injected += fleet.link(i).faults()->injected_total();
      }
      retries += fleet.client(i).retries();
    }
    // Replays happen inside the shard SPs; sum their counters.
    each_registry([&replayed](obs::Registry& registry) {
      for (const auto& c : registry.counters()) {
        if (c.name.find(".retry.replayed_") != std::string::npos) {
          replayed += c.value;
        }
      }
    });
    std::printf("  chaos: faults_injected=%llu client_retries=%llu "
                "sp_replays=%llu (seed %llu)\n",
                static_cast<unsigned long long>(injected),
                static_cast<unsigned long long>(retries),
                static_cast<unsigned long long>(replayed),
                static_cast<unsigned long long>(fault_seed));
  }
  if (vcluster != nullptr) {
    // Cluster-level registry: router counters + per-shard gauges.
    vcluster->publish_gauges();
    std::printf("\ncluster metrics registry:\n%s\n",
                vcluster->metrics().to_json().c_str());
  } else {
    std::printf("\nmetrics registry:\n%s\n",
                service->metrics().to_json().c_str());
  }
  return confirmed == submitted ? 0 : 1;
}
