// Quickstart: one client, one service provider, one confirmed
// transaction over the uni-directional trusted path.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "pal/human_agent.h"
#include "sp/deployment.h"

using namespace tp;

int main() {
  // 1. Deploy the world: a client machine with TPM + DRTM, a Privacy CA
  //    that certified its AIK, and a service provider that trusts the CA
  //    and the published PAL measurement.
  sp::DeploymentConfig config;
  config.client_id = "alice-laptop";
  sp::Deployment world(config);

  // 2. A human sits at the machine, intending to pay Bob.
  devices::HumanParams human;
  pal::HumanAgent alice(devices::HumanModel(human, SimRng(2026)),
                        "pay 100 EUR to bob");
  world.client().set_user_agent(&alice);

  // 3. Enroll once: the PAL generates and seals the confirmation key and
  //    the SP verifies the TPM quote before trusting it.
  if (auto s = world.client().enroll(); !s.ok()) {
    std::fprintf(stderr, "enrollment failed: %s\n",
                 s.error().to_string().c_str());
    return 1;
  }
  std::printf("enrolled: key generated inside the PAL, quote verified\n");

  // 4. Submit the transaction; the PAL shows it on the trusted screen,
  //    Alice re-types the code, the SP verifies the signature.
  auto outcome = world.client().submit_transaction("pay 100 EUR to bob",
                                                   bytes_of("order #4711"));
  if (!outcome.ok()) {
    std::fprintf(stderr, "protocol error: %s\n",
                 outcome.error().to_string().c_str());
    return 1;
  }

  const auto& result = outcome.value();
  std::printf("transaction %s (%s)\n",
              result.accepted ? "ACCEPTED" : "REJECTED",
              result.reason.c_str());
  std::printf("session breakdown (virtual ms):\n");
  std::printf("  machine (suspend+SKINIT+TPM+resume): %8.1f\n",
              result.timing.machine().to_millis());
  std::printf("    of which TPM commands:             %8.1f\n",
              result.timing.tpm.to_millis());
  std::printf("  human (read screen, type code):      %8.1f\n",
              result.timing.user.to_millis());
  std::printf("  total:                               %8.1f\n",
              result.timing.total.to_millis());
  return result.accepted ? 0 : 1;
}
